//! Deterministic fault injection and the recovery policy of the simulated
//! cluster.
//!
//! A [`FaultPlan`] describes *what goes wrong*: per-stage task-failure
//! probabilities, explicit `(stage, task, attempt)` fail points, per-node
//! slowdown multipliers (stragglers) and whole-node loss ("the executor
//! died"). Every injection decision is a pure function of
//! `(seed, stage, task, attempt)` — independent of thread interleaving — so
//! a seeded plan reproduces the same failures run after run.
//!
//! A [`RetryPolicy`] describes *how the engine recovers*: per-task retry with
//! a bounded attempt count (Spark's `spark.task.maxFailures`, default 4),
//! node blacklisting after repeated failures, and optional speculative
//! re-execution of stragglers.
//!
//! [`FaultState`] is the mutable cluster-lifetime side: per-node attempt and
//! failure counters, the fired-loss flags and the blacklist. It is shared by
//! every stage a [`crate::Cluster`] runs, so a node blacklisted during the
//! shuffle stays blacklisted for the join.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What a single task attempt died of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The user closure panicked; carries the panic payload when printable.
    Panic(String),
    /// A [`FaultPlan`] injected this failure (probabilistic or explicit).
    Injected { attempt: usize },
    /// A [`FaultPlan`] injected memory-budget exhaustion for this attempt
    /// (the `oom:` clause): the task's node had no headroom left, the
    /// analog of an executor dying with `OutOfMemoryError`.
    OutOfMemory { attempt: usize },
    /// The attempt ran on a node that the plan declared lost.
    NodeLost { node: usize },
    /// An application-level error (e.g. a wire-format decode failure)
    /// surfaced through the task result.
    App(String),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Panic(msg) => write!(f, "task panicked: {msg}"),
            TaskError::Injected { attempt } => {
                write!(f, "injected fault (attempt {attempt})")
            }
            TaskError::OutOfMemory { attempt } => {
                write!(
                    f,
                    "injected out-of-memory: budget exhausted (attempt {attempt})"
                )
            }
            TaskError::NodeLost { node } => write!(f, "node {node} lost"),
            TaskError::App(msg) => write!(f, "task failed: {msg}"),
        }
    }
}

impl From<crate::wire::WireError> for TaskError {
    fn from(e: crate::wire::WireError) -> Self {
        TaskError::App(e.to_string())
    }
}

/// A job (stage) failed: some task exhausted every permitted attempt.
///
/// Returned by the `try_` stage APIs; the panicking stage APIs convert it
/// into a panic, preserving the engine's original fail-stop contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Stage name the task belonged to.
    pub stage: String,
    /// Task index within the stage.
    pub task: usize,
    /// Attempts consumed (including the fatal one).
    pub attempts: usize,
    /// The last attempt's error.
    pub error: TaskError,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage '{}' task {} failed after {} attempt(s): {}",
            self.stage, self.task, self.attempts, self.error
        )
    }
}

impl std::error::Error for JobError {}

/// An explicit deterministic fail point: attempt `attempt` of task `task`
/// in stage `stage` fails, exactly once.
#[derive(Debug, Clone, PartialEq)]
pub struct FailPoint {
    pub stage: String,
    pub task: usize,
    pub attempt: usize,
}

/// Seeded, deterministic description of everything that goes wrong during a
/// job. The default plan injects nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the per-attempt failure hash.
    pub seed: u64,
    /// Probability that any attempt fails, for stages without an override.
    pub default_fail_prob: f64,
    /// Per-stage overrides of the failure probability.
    pub stage_fail_prob: Vec<(String, f64)>,
    /// Explicit `(stage, task, attempt)` fail points.
    pub fail_points: Vec<FailPoint>,
    /// Explicit `(stage, task, attempt)` out-of-memory points: the attempt
    /// fails with [`TaskError::OutOfMemory`], exercising the same
    /// retry/blacklist recovery as a real budget exhaustion would.
    pub oom_points: Vec<FailPoint>,
    /// `(node, multiplier)` — the node runs that many times slower than its
    /// peers (a straggler). Entries for nodes outside the cluster are inert.
    pub node_slowdown: Vec<(usize, f64)>,
    /// `(node, after_attempts)` — the node is lost once it has started that
    /// many attempts; every later attempt placed on it fails.
    pub lost_nodes: Vec<(usize, u64)>,
    /// Kill the job-server loop once it has granted this many quanta (the
    /// `crash@N` clause) — a deterministic process-crash point for recovery
    /// testing. Only the [`JobServer`](crate::JobServer) consults it; plain
    /// stage execution ignores a crash clause.
    pub crash_after_grants: Option<u64>,
}

/// splitmix64: a tiny, high-quality mixer for the injection hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn stage_hash(stage: &str) -> u64 {
    // FNV-1a; stable across runs and platforms.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in stage.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultPlan {
    /// A plan that injects nothing (the engine's default behaviour).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.default_fail_prob > 0.0
            || !self.stage_fail_prob.is_empty()
            || !self.fail_points.is_empty()
            || !self.oom_points.is_empty()
            || !self.node_slowdown.is_empty()
            || !self.lost_nodes.is_empty()
            || self.crash_after_grants.is_some()
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Every attempt of every stage fails with probability `p`.
    pub fn with_fail_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.default_fail_prob = p;
        self
    }

    /// Attempts of stage `stage` fail with probability `p` (overrides the
    /// default probability for that stage).
    pub fn with_stage_fail_prob(mut self, stage: &str, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.stage_fail_prob.push((stage.to_string(), p));
        self
    }

    /// Adds an explicit fail point.
    pub fn with_fail_point(mut self, stage: &str, task: usize, attempt: usize) -> Self {
        self.fail_points.push(FailPoint {
            stage: stage.to_string(),
            task,
            attempt,
        });
        self
    }

    /// Adds an explicit out-of-memory point: attempt `attempt` of task
    /// `task` in stage `stage` fails with budget exhaustion.
    pub fn with_oom_point(mut self, stage: &str, task: usize, attempt: usize) -> Self {
        self.oom_points.push(FailPoint {
            stage: stage.to_string(),
            task,
            attempt,
        });
        self
    }

    /// Node `node` runs `multiplier` times slower than its peers.
    pub fn with_slow_node(mut self, node: usize, multiplier: f64) -> Self {
        assert!(multiplier >= 1.0, "slowdown multiplier must be >= 1");
        self.node_slowdown.push((node, multiplier));
        self
    }

    /// Node `node` is lost after starting `after_attempts` attempts.
    pub fn with_lost_node(mut self, node: usize, after_attempts: u64) -> Self {
        self.lost_nodes.push((node, after_attempts));
        self
    }

    /// The job-server loop crashes once it has granted `grants` quanta
    /// (see [`FaultPlan::crash_after_grants`]).
    pub fn with_crash_after_grants(mut self, grants: u64) -> Self {
        self.crash_after_grants = Some(grants);
        self
    }

    /// A standard chaos plan for CI and A/B experiments: a modest
    /// per-attempt failure probability, one straggler and one lost node.
    /// Node references beyond the cluster width are inert, so the plan is
    /// meaningful on any cluster of >= 1 node.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::none()
            .with_seed(seed)
            .with_fail_prob(0.03)
            .with_slow_node(1, 3.0)
            .with_lost_node(2, 5)
    }

    /// Reads a plan from the environment: `ASJ_FAULTS` holds a spec in the
    /// [`FaultPlan::parse`] grammar, `ASJ_FAULT_SEED` a seed. Either alone
    /// suffices — a bare seed selects [`FaultPlan::chaos`]. Returns `None`
    /// when neither is set (or both are empty).
    pub fn from_env() -> Option<Self> {
        let non_empty = |k: &str| std::env::var(k).ok().filter(|v| !v.is_empty());
        let seed = non_empty("ASJ_FAULT_SEED").and_then(|v| v.parse::<u64>().ok());
        match (non_empty("ASJ_FAULTS"), seed) {
            (Some(spec), seed) => FaultPlan::parse(&spec, seed.unwrap_or(7)).ok(),
            (None, Some(seed)) => Some(FaultPlan::chaos(seed)),
            (None, None) => None,
        }
    }

    /// Parses a comma-separated fault spec:
    ///
    /// ```text
    /// chaos                    the standard chaos plan
    /// p=0.05                   every attempt fails with probability 0.05
    /// stage:local_join=0.2     attempts of one stage fail with probability 0.2
    /// slow:1=3.0               node 1 runs 3x slower
    /// lose:2@5                 node 2 is lost after starting 5 attempts
    /// fail:marking:3@1         attempt 1 of task 3 in stage 'marking' fails
    /// oom:shuffle.R:0@1        attempt 1 of task 0 in stage 'shuffle.R'
    ///                          fails with injected budget exhaustion
    /// crash@6                  the job-server loop dies after granting 6
    ///                          quanta (recovery testing; see JobServer)
    /// ```
    ///
    /// e.g. `p=0.02,slow:1=4.0,lose:2@5`.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::none().with_seed(seed);
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if clause == "chaos" {
                let chaos = FaultPlan::chaos(seed);
                plan.default_fail_prob = chaos.default_fail_prob;
                plan.node_slowdown.extend(chaos.node_slowdown);
                plan.lost_nodes.extend(chaos.lost_nodes);
                continue;
            }
            // `p=`, `stage:`, `slow:` clauses use '='; `lose:` and `fail:`
            // separate their threshold with '@'.
            let (key, value) = clause
                .split_once('=')
                .or_else(|| clause.split_once('@'))
                .ok_or_else(|| format!("fault clause '{clause}' is not key=value or key@value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid probability '{v}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability '{v}' not in [0,1]"));
                }
                Ok(p)
            };
            match key.split(':').collect::<Vec<_>>().as_slice() {
                ["p"] => plan.default_fail_prob = prob(value)?,
                ["stage", stage] => {
                    plan.stage_fail_prob.push((stage.to_string(), prob(value)?));
                }
                ["slow", node] => {
                    let node: usize = node.parse().map_err(|_| format!("invalid node '{node}'"))?;
                    let mult: f64 = value
                        .parse()
                        .map_err(|_| format!("invalid multiplier '{value}'"))?;
                    if mult < 1.0 {
                        return Err(format!("slowdown '{value}' must be >= 1"));
                    }
                    plan.node_slowdown.push((node, mult));
                }
                ["crash"] => {
                    let grants: u64 = value
                        .parse()
                        .map_err(|_| format!("invalid grant count '{value}'"))?;
                    plan.crash_after_grants = Some(grants);
                }
                ["lose", node] => {
                    let node: usize = node.parse().map_err(|_| format!("invalid node '{node}'"))?;
                    let after: u64 = value
                        .parse()
                        .map_err(|_| format!("invalid attempt count '{value}'"))?;
                    plan.lost_nodes.push((node, after));
                }
                ["fail", stage, task] | ["oom", stage, task] => {
                    let is_oom = key.starts_with("oom");
                    let task: usize = task.parse().map_err(|_| format!("invalid task '{task}'"))?;
                    let attempt: usize = value
                        .parse()
                        .map_err(|_| format!("invalid attempt '{value}'"))?;
                    let point = FailPoint {
                        stage: stage.to_string(),
                        task,
                        attempt,
                    };
                    if is_oom {
                        plan.oom_points.push(point);
                    } else {
                        plan.fail_points.push(point);
                    }
                }
                _ => return Err(format!("unknown fault clause '{clause}'")),
            }
        }
        Ok(plan)
    }

    /// Failure probability for attempts of `stage`.
    fn fail_prob(&self, stage: &str) -> f64 {
        self.stage_fail_prob
            .iter()
            .find(|(s, _)| s == stage)
            .map(|(_, p)| *p)
            .unwrap_or(self.default_fail_prob)
    }

    /// Deterministic injection decision for one attempt. `attempt` is
    /// 1-based for regular attempts; speculative copies use 0.
    pub fn injects(&self, stage: &str, task: usize, attempt: usize) -> bool {
        if self
            .fail_points
            .iter()
            .any(|fp| fp.stage == stage && fp.task == task && fp.attempt == attempt)
        {
            return true;
        }
        let p = self.fail_prob(stage);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let h = splitmix64(
            self.seed
                ^ stage_hash(stage)
                ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        // Map the hash to [0,1) and compare; deterministic and unbiased
        // enough for failure injection.
        ((h >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Deterministic out-of-memory injection decision for one attempt
    /// (explicit `oom:` points only — OOM has no probabilistic form, since a
    /// real exhaustion depends on workload, not chance).
    pub fn injects_oom(&self, stage: &str, task: usize, attempt: usize) -> bool {
        self.oom_points
            .iter()
            .any(|fp| fp.stage == stage && fp.task == task && fp.attempt == attempt)
    }

    /// Slowdown multiplier of `node` (1.0 when not a straggler).
    pub fn slowdown(&self, node: usize) -> f64 {
        self.node_slowdown
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, m)| *m)
            .unwrap_or(1.0)
    }

    /// Attempt count after which `node` is lost, if the plan loses it.
    pub fn lost_after(&self, node: usize) -> Option<u64> {
        self.lost_nodes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, after)| *after)
    }
}

/// How the engine recovers from failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per task before the job fails (Spark's
    /// `spark.task.maxFailures`, default 4).
    pub max_attempts: usize,
    /// Failures on a node before it is blacklisted for re-placement.
    pub blacklist_after: u64,
    /// Enable speculative re-execution of stragglers.
    pub speculation: bool,
    /// Fraction of tasks that must have finished before speculation starts
    /// (Spark's `spark.speculation.quantile`).
    pub speculation_quantile: f64,
    /// A running task is a straggler once its projected duration exceeds
    /// this multiple of the mean finished-task duration
    /// (Spark's `spark.speculation.multiplier`).
    pub speculation_multiplier: f64,
    /// Base retry backoff in simulated microseconds; `0` (the default)
    /// disables backoff entirely. When enabled, retry attempt `k` (the
    /// second attempt being `k = 2`) waits an exponentially growing,
    /// jittered simulated delay before re-placement, so a burst of failures
    /// doesn't hammer the same scheduling quantum.
    pub backoff_base_us: u64,
    /// Seed for the backoff jitter (deterministic per
    /// `(stage, task, attempt)`).
    pub backoff_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            blacklist_after: 2,
            speculation: false,
            speculation_quantile: 0.75,
            speculation_multiplier: 1.5,
            backoff_base_us: 0,
            backoff_seed: 7,
        }
    }
}

impl RetryPolicy {
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one attempt");
        self.max_attempts = n;
        self
    }

    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    pub fn with_blacklist_after(mut self, failures: u64) -> Self {
        assert!(failures >= 1, "blacklist threshold must be >= 1");
        self.blacklist_after = failures;
        self
    }

    /// Enables exponential retry backoff with `base_us` simulated
    /// microseconds at the first retry.
    pub fn with_backoff(mut self, base_us: u64) -> Self {
        self.backoff_base_us = base_us;
        self
    }

    /// Seeds the backoff jitter.
    pub fn with_backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// The simulated backoff delay before retry `attempt` of `task` in
    /// `stage` (`attempt` is the new attempt's 1-based number, so the first
    /// retry is `2`). Exponential in the retry count, with deterministic
    /// jitter in `[scaled/2, scaled]` — the classic decorrelation that keeps
    /// a burst of simultaneous failures from re-colliding, minus the
    /// nondeterminism: the delay is a pure function of
    /// `(seed, stage, task, attempt)`, like every other injection decision.
    pub fn backoff(&self, stage: &str, task: usize, attempt: usize) -> std::time::Duration {
        if self.backoff_base_us == 0 || attempt < 2 {
            return std::time::Duration::ZERO;
        }
        // Cap the exponent so a long retry chain saturates instead of
        // overflowing (2^16 * base is already far past any useful delay).
        let exp = (attempt as u32 - 2).min(16);
        let scaled = self.backoff_base_us.saturating_mul(1u64 << exp);
        let h = splitmix64(
            self.backoff_seed
                ^ stage_hash(stage)
                ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        let half = scaled / 2;
        let jittered = half + h % (scaled - half + 1);
        std::time::Duration::from_micros(jittered)
    }
}

/// Cluster-lifetime mutable fault state, shared across every stage the
/// cluster runs: which nodes have fired their loss, how often each node
/// failed, and the blacklist.
#[derive(Debug)]
pub struct FaultState {
    /// Attempts started per node (drives node-loss firing).
    attempts_started: Vec<AtomicU64>,
    /// Failed attempts per node (drives blacklisting).
    failures: Vec<AtomicU64>,
    lost: Vec<AtomicBool>,
    blacklisted: Vec<AtomicBool>,
}

impl FaultState {
    pub fn new(nodes: usize) -> Self {
        FaultState {
            attempts_started: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            failures: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            lost: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            blacklisted: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    pub fn nodes(&self) -> usize {
        self.lost.len()
    }

    /// Registers one attempt starting on `node`, firing the node's loss when
    /// the plan says it has started enough attempts.
    pub fn note_attempt_started(&self, plan: &FaultPlan, node: usize) {
        let started = self.attempts_started[node].fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(after) = plan.lost_after(node) {
            if started > after {
                self.lost[node].store(true, Ordering::Relaxed);
            }
        }
    }

    pub fn is_lost(&self, node: usize) -> bool {
        self.lost[node].load(Ordering::Relaxed)
    }

    /// Registers a failed attempt on `node`; blacklists it after
    /// `blacklist_after` failures, unless it is the last usable node.
    /// Returns `true` when this call newly blacklisted the node.
    pub fn note_failure(&self, policy: &RetryPolicy, node: usize) -> bool {
        let failures = self.failures[node].fetch_add(1, Ordering::Relaxed) + 1;
        if failures < policy.blacklist_after || self.blacklisted[node].load(Ordering::Relaxed) {
            return false;
        }
        // Never blacklist the last usable node: with nowhere to run, the job
        // would starve instead of failing with a meaningful error.
        let usable = (0..self.nodes())
            .filter(|&n| n != node && !self.blacklisted[n].load(Ordering::Relaxed))
            .count();
        if usable == 0 {
            return false;
        }
        !self.blacklisted[node].swap(true, Ordering::Relaxed)
    }

    pub fn is_blacklisted(&self, node: usize) -> bool {
        self.blacklisted[node].load(Ordering::Relaxed)
    }

    /// A node the scheduler should avoid: blacklisted or known-lost.
    pub fn is_avoided(&self, node: usize) -> bool {
        self.is_blacklisted(node) || self.is_lost(node)
    }

    pub fn blacklisted_count(&self) -> u64 {
        self.blacklisted
            .iter()
            .filter(|b| b.load(Ordering::Relaxed))
            .count() as u64
    }
}

/// Everything the fault-aware executor needs: the plan, the recovery policy
/// and the shared mutable state.
#[derive(Debug)]
pub struct FaultContext {
    pub plan: FaultPlan,
    pub policy: RetryPolicy,
    pub state: FaultState,
    /// The cluster's memory accountant, when attached: injected `oom:`
    /// faults notify it so OOM events surface in memory snapshots alongside
    /// real budget activity.
    pub memory: Option<std::sync::Arc<crate::memory::MemoryAccountant>>,
}

impl FaultContext {
    pub fn new(plan: FaultPlan, policy: RetryPolicy, nodes: usize) -> Self {
        FaultContext {
            plan,
            policy,
            state: FaultState::new(nodes),
            memory: None,
        }
    }

    /// Attaches the cluster's memory accountant.
    pub fn with_memory(mut self, memory: std::sync::Arc<crate::memory::MemoryAccountant>) -> Self {
        self.memory = Some(memory);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::none().with_seed(1).with_fail_prob(0.5);
        let b = FaultPlan::none().with_seed(2).with_fail_prob(0.5);
        let decisions_a: Vec<bool> = (0..64).map(|t| a.injects("map", t, 1)).collect();
        let decisions_a2: Vec<bool> = (0..64).map(|t| a.injects("map", t, 1)).collect();
        let decisions_b: Vec<bool> = (0..64).map(|t| b.injects("map", t, 1)).collect();
        assert_eq!(decisions_a, decisions_a2, "same seed, same decisions");
        assert_ne!(decisions_a, decisions_b, "different seeds must diverge");
        let fails = decisions_a.iter().filter(|&&x| x).count();
        assert!((10..=54).contains(&fails), "p=0.5 should fail about half");
    }

    #[test]
    fn injection_rate_tracks_probability() {
        let plan = FaultPlan::none().with_seed(9).with_fail_prob(0.1);
        let n = 10_000;
        let fails = (0..n).filter(|&t| plan.injects("shuffle", t, 1)).count();
        let rate = fails as f64 / n as f64;
        assert!((0.07..=0.13).contains(&rate), "rate {rate} far from 0.1");
    }

    #[test]
    fn stage_override_and_extremes() {
        let plan = FaultPlan::none()
            .with_fail_prob(0.0)
            .with_stage_fail_prob("join", 1.0);
        assert!(plan.injects("join", 0, 1));
        assert!(!plan.injects("map", 0, 1));
    }

    #[test]
    fn fail_points_fire_exactly_where_placed() {
        let plan = FaultPlan::none().with_fail_point("map", 3, 1);
        assert!(plan.injects("map", 3, 1));
        assert!(!plan.injects("map", 3, 2));
        assert!(!plan.injects("map", 2, 1));
        assert!(!plan.injects("reduce", 3, 1));
    }

    #[test]
    fn slowdown_and_loss_lookups() {
        let plan = FaultPlan::none()
            .with_slow_node(2, 4.0)
            .with_lost_node(1, 10);
        assert_eq!(plan.slowdown(2), 4.0);
        assert_eq!(plan.slowdown(0), 1.0);
        assert_eq!(plan.lost_after(1), Some(10));
        assert_eq!(plan.lost_after(0), None);
        assert!(plan.is_active());
        assert!(!FaultPlan::none().is_active());
    }

    #[test]
    fn node_loss_fires_after_threshold() {
        let plan = FaultPlan::none().with_lost_node(0, 2);
        let state = FaultState::new(2);
        state.note_attempt_started(&plan, 0);
        state.note_attempt_started(&plan, 0);
        assert!(!state.is_lost(0), "loss fires only past the threshold");
        state.note_attempt_started(&plan, 0);
        assert!(state.is_lost(0));
        assert!(!state.is_lost(1));
    }

    #[test]
    fn blacklist_spares_the_last_node() {
        let policy = RetryPolicy::default().with_blacklist_after(1);
        let state = FaultState::new(2);
        assert!(state.note_failure(&policy, 0), "first node blacklists");
        assert!(state.is_blacklisted(0));
        assert!(
            !state.note_failure(&policy, 1),
            "last usable node must never be blacklisted"
        );
        assert!(!state.is_blacklisted(1));
        assert_eq!(state.blacklisted_count(), 1);
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let plan = FaultPlan::parse("p=0.05, slow:1=3.0, lose:2@4, stage:local_join=0.2", 11);
        let plan = plan.expect("spec must parse");
        assert_eq!(plan.seed, 11);
        assert_eq!(plan.default_fail_prob, 0.05);
        assert_eq!(plan.slowdown(1), 3.0);
        assert_eq!(plan.lost_after(2), Some(4));
        assert_eq!(plan.fail_prob("local_join"), 0.2);
        let fp = FaultPlan::parse("fail:marking:3@2", 0).expect("fail point parses");
        assert!(fp.injects("marking", 3, 2));
        assert!(!fp.injects("marking", 3, 1));
        let oom = FaultPlan::parse("oom:shuffle.R:0@1", 0).expect("oom point parses");
        assert!(oom.injects_oom("shuffle.R", 0, 1));
        assert!(!oom.injects_oom("shuffle.R", 0, 2));
        assert!(!oom.injects_oom("shuffle.S", 0, 1));
        assert!(
            !oom.injects("shuffle.R", 0, 1),
            "oom is not a plain failure"
        );
        assert!(oom.is_active());
        assert_eq!(oom, FaultPlan::none().with_oom_point("shuffle.R", 0, 1));
        assert_eq!(
            FaultPlan::parse("chaos", 5).expect("chaos parses"),
            FaultPlan::chaos(5)
        );
        let crash = FaultPlan::parse("crash@6", 0).expect("crash parses");
        assert_eq!(crash.crash_after_grants, Some(6));
        assert!(crash.is_active());
        assert_eq!(crash, FaultPlan::none().with_crash_after_grants(6));
        let combined = FaultPlan::parse("p=0.1,crash@3", 1).expect("combined parses");
        assert_eq!(combined.crash_after_grants, Some(3));
        assert_eq!(combined.default_fail_prob, 0.1);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "p",
            "p=1.5",
            "slow:x=2.0",
            "slow:1=0.5",
            "lose:1=x",
            "what:3=1",
            "fail:stage:x@1",
            "oom:stage:x@1",
            "oom:stage:1@y",
            "crash@x",
            "crash@-1",
        ] {
            assert!(
                FaultPlan::parse(bad, 0).is_err(),
                "'{bad}' must be rejected"
            );
        }
    }

    #[test]
    fn backoff_is_off_by_default_and_deterministic_when_on() {
        let off = RetryPolicy::default();
        assert_eq!(off.backoff("map", 0, 2), std::time::Duration::ZERO);

        let on = RetryPolicy::default().with_backoff(100);
        assert_eq!(
            on.backoff("map", 0, 1),
            std::time::Duration::ZERO,
            "first attempts never wait"
        );
        let d2 = on.backoff("map", 0, 2);
        assert_eq!(on.backoff("map", 0, 2), d2, "pure function of inputs");
        // Jitter stays inside [scaled/2, scaled] at every retry depth.
        for attempt in 2..8 {
            let scaled = 100u64 << (attempt - 2);
            let d = on.backoff("map", 3, attempt as usize);
            let us = d.as_micros() as u64;
            assert!(
                (scaled / 2..=scaled).contains(&us),
                "attempt {attempt}: {us}us outside [{}, {scaled}]",
                scaled / 2
            );
        }
        // Different tasks and seeds decorrelate.
        assert_ne!(on.backoff("map", 0, 4), on.backoff("map", 1, 4));
        let reseeded = on.with_backoff_seed(99);
        assert_ne!(reseeded.backoff("map", 0, 4), on.backoff("map", 0, 4));
    }
}
