//! Spatial-index substrates used by the join baselines.
//!
//! The paper's evaluation compares against Apache Sedona, whose distance join
//! runs in three phases: **quadtree space partitioning** (built from a sample
//! of the replicated side), **per-partition R-tree indexing** of the larger
//! side, and index-probed join computation. This crate provides those two
//! structures plus the partition-local join kernels shared by all algorithms:
//!
//! * [`RTree`] — STR (sort-tile-recursive) bulk-loaded R-tree with
//!   rectangle and ε-disk queries.
//! * [`QuadTreePartitioner`] — sample-driven recursive space partitioner
//!   with point→leaf and ε-disk→leaves lookups.
//! * [`KdTree`] — median-split k-d tree over points with ε-range and exact
//!   kNN queries (the independent oracle for the distributed kNN join).
//! * [`kernels`] — the shared partition-local join layer every distributed
//!   algorithm routes through ([`kernels::local_join`]): the paper's
//!   nested-loop semantics (§6.1), a plane-sweep kernel and an ε-bucket
//!   grid kernel, plus `Auto` resolution — a per-cell-group pick driven by
//!   a cost model whose constants a one-shot microbenchmark calibrates at
//!   first use ([`kernels::calibrate_cost_model`]).

pub mod batch;
mod kdtree;
pub mod kernels;
mod quadtree;
mod rtree;

pub use batch::{PointBatch, PointsView};
pub use kdtree::KdTree;
pub use quadtree::QuadTreePartitioner;
pub use rtree::RTree;
