//! Spatial-index substrates used by the join baselines.
//!
//! The paper's evaluation compares against Apache Sedona, whose distance join
//! runs in three phases: **quadtree space partitioning** (built from a sample
//! of the replicated side), **per-partition R-tree indexing** of the larger
//! side, and index-probed join computation. This crate provides those two
//! structures plus the partition-local join kernels shared by all algorithms:
//!
//! * [`RTree`] — STR (sort-tile-recursive) bulk-loaded R-tree with
//!   rectangle and ε-disk queries.
//! * [`QuadTreePartitioner`] — sample-driven recursive space partitioner
//!   with point→leaf and ε-disk→leaves lookups.
//! * [`KdTree`] — median-split k-d tree over points with ε-range and exact
//!   kNN queries (the independent oracle for the distributed kNN join).
//! * [`kernels`] — the per-cell ε-distance kernels: the paper's hash-join
//!   semantics (nested loop over a cell's candidates with distance
//!   refinement) and a plane-sweep alternative used for ablations.

mod kdtree;
pub mod kernels;
mod quadtree;
mod rtree;

pub use kdtree::KdTree;
pub use quadtree::QuadTreePartitioner;
pub use rtree::RTree;
