use asj_geom::{Point, Rect};

/// An immutable R-tree bulk-loaded with the Sort-Tile-Recursive (STR)
/// algorithm.
///
/// The Sedona-like baseline builds one per partition over the larger input
/// and probes it with ε-expanded query boxes. Entries are `(Rect, T)`; for
/// point data the rectangle is degenerate.
///
/// # Example
///
/// ```
/// use asj_geom::{Point, Rect};
/// use asj_index::RTree;
///
/// let items: Vec<(Rect, u32)> = (0..100)
///     .map(|i| (Rect::from_point(Point::new(i as f64, 0.0)), i))
///     .collect();
/// let tree = RTree::bulk_load(items, 16);
/// let mut hits = Vec::new();
/// tree.query_within(Point::new(10.2, 0.0), 1.0, |_, &i| hits.push(i));
/// hits.sort_unstable();
/// assert_eq!(hits, vec![10, 11]);
/// ```
#[derive(Debug, Clone)]
pub struct RTree<T> {
    /// Leaf entries, reordered by the STR tiling.
    entries: Vec<(Rect, T)>,
    /// Tree nodes; the last one is the root (if any).
    nodes: Vec<Node>,
    root: Option<usize>,
    max_entries: usize,
}

#[derive(Debug, Clone)]
struct Node {
    rect: Rect,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
enum NodeKind {
    /// Range into `entries`.
    Leaf(std::ops::Range<usize>),
    /// Child node indices.
    Inner(Vec<usize>),
}

impl<T> RTree<T> {
    /// Bulk-loads the tree. `max_entries` is the node fan-out (≥ 2); 16 is a
    /// reasonable default for point data.
    pub fn bulk_load(mut items: Vec<(Rect, T)>, max_entries: usize) -> Self {
        assert!(max_entries >= 2, "fan-out must be at least 2");
        if items.is_empty() {
            return RTree {
                entries: Vec::new(),
                nodes: Vec::new(),
                root: None,
                max_entries,
            };
        }
        let n = items.len();
        let m = max_entries;
        // STR leaf tiling: sort by center-x, cut into vertical slabs of
        // ~sqrt(n/m) leaves each, sort each slab by center-y, cut into leaves.
        let leaf_count = n.div_ceil(m);
        let slabs = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slab = n.div_ceil(slabs);
        items.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let mut nodes: Vec<Node> = Vec::new();
        let mut leaf_ids: Vec<usize> = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + per_slab).min(n);
            items[start..end].sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
            let mut ls = start;
            while ls < end {
                let le = (ls + m).min(end);
                let mut rect = Rect::empty();
                for (r, _) in &items[ls..le] {
                    rect = rect.union(r);
                }
                nodes.push(Node {
                    rect,
                    kind: NodeKind::Leaf(ls..le),
                });
                leaf_ids.push(nodes.len() - 1);
                ls = le;
            }
            start = end;
        }
        // Build upper levels by re-tiling node MBRs until one root remains.
        let mut level = leaf_ids;
        while level.len() > 1 {
            let count = level.len();
            let groups = count.div_ceil(m);
            let slabs = (groups as f64).sqrt().ceil() as usize;
            let per_slab = count.div_ceil(slabs);
            level.sort_by(|&a, &b| {
                nodes[a]
                    .rect
                    .center()
                    .x
                    .total_cmp(&nodes[b].rect.center().x)
            });
            let mut next: Vec<usize> = Vec::new();
            let mut start = 0usize;
            while start < count {
                let end = (start + per_slab).min(count);
                level[start..end].sort_by(|&a, &b| {
                    nodes[a]
                        .rect
                        .center()
                        .y
                        .total_cmp(&nodes[b].rect.center().y)
                });
                let mut gs = start;
                while gs < end {
                    let ge = (gs + m).min(end);
                    let children: Vec<usize> = level[gs..ge].to_vec();
                    let mut rect = Rect::empty();
                    for &c in &children {
                        rect = rect.union(&nodes[c].rect);
                    }
                    nodes.push(Node {
                        rect,
                        kind: NodeKind::Inner(children),
                    });
                    next.push(nodes.len() - 1);
                    gs = ge;
                }
                start = end;
            }
            level = next;
        }
        let root = level.first().copied();
        RTree {
            entries: items,
            nodes,
            root,
            max_entries,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Node fan-out used at load time.
    pub fn fan_out(&self) -> usize {
        self.max_entries
    }

    /// Height of the tree (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        fn depth(nodes: &[Node], id: usize) -> usize {
            match &nodes[id].kind {
                NodeKind::Leaf(_) => 1,
                NodeKind::Inner(children) => 1 + depth(nodes, children[0]),
            }
        }
        self.root.map_or(0, |r| depth(&self.nodes, r))
    }

    /// Visits every entry whose rectangle intersects `query`.
    pub fn query<F: FnMut(&Rect, &T)>(&self, query: &Rect, mut visit: F) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !node.rect.intersects(query) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(range) => {
                    for (rect, item) in &self.entries[range.clone()] {
                        if rect.intersects(query) {
                            visit(rect, item);
                        }
                    }
                }
                NodeKind::Inner(children) => stack.extend(children.iter().copied()),
            }
        }
    }

    /// Visits every entry whose rectangle is within distance `eps` of `p`
    /// (MINDIST pruning) — the probe shape of an ε-distance join.
    pub fn query_within<F: FnMut(&Rect, &T)>(&self, p: Point, eps: f64, mut visit: F) {
        let Some(root) = self.root else { return };
        let e2 = eps * eps;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.rect.mindist2(p) > e2 {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(range) => {
                    for (rect, item) in &self.entries[range.clone()] {
                        if rect.mindist2(p) <= e2 {
                            visit(rect, item);
                        }
                    }
                }
                NodeKind::Inner(children) => stack.extend(children.iter().copied()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let p = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
                (Rect::from_point(p), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<usize> = RTree::bulk_load(Vec::new(), 8);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        let mut hits = 0;
        t.query(&Rect::new(0.0, 0.0, 1.0, 1.0), |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn single_entry() {
        let t = RTree::bulk_load(vec![(Rect::from_point(Point::new(5.0, 5.0)), 7usize)], 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let mut hit = None;
        t.query(&Rect::new(4.0, 4.0, 6.0, 6.0), |_, &i| hit = Some(i));
        assert_eq!(hit, Some(7));
    }

    #[test]
    fn rect_query_matches_linear_scan() {
        let items = random_points(2000, 11);
        let t = RTree::bulk_load(items.clone(), 16);
        assert!(t.height() >= 2);
        for qi in 0..50 {
            let q = Rect::new(
                (qi * 2) as f64 % 90.0,
                (qi * 3) as f64 % 90.0,
                (qi * 2) as f64 % 90.0 + 8.0,
                (qi * 3) as f64 % 90.0 + 8.0,
            );
            let mut got: Vec<usize> = Vec::new();
            t.query(&q, |_, &i| got.push(i));
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|&(_, i)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn within_query_matches_linear_scan() {
        let items = random_points(1500, 23);
        let t = RTree::bulk_load(items.clone(), 10);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let p = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let eps = rng.gen_range(0.5..10.0);
            let mut got: Vec<usize> = Vec::new();
            t.query_within(p, eps, |_, &i| got.push(i));
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.within_eps_of(p, eps))
                .map(|&(_, i)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = RTree::bulk_load(random_points(4096, 3), 16);
        // 4096 entries at fan-out 16: 256 leaves, 16 inner, 1 root = height 3.
        assert!(t.height() <= 4, "height {}", t.height());
        assert_eq!(t.fan_out(), 16);
    }

    #[test]
    fn duplicate_positions_are_all_found() {
        let p = Point::new(1.0, 1.0);
        let items: Vec<(Rect, usize)> = (0..20).map(|i| (Rect::from_point(p), i)).collect();
        let t = RTree::bulk_load(items, 4);
        let mut hits = 0;
        t.query_within(p, 0.1, |_, _| hits += 1);
        assert_eq!(hits, 20);
    }
}
