use asj_geom::{Point, Rect};

/// A static, bulk-built k-d tree over points.
///
/// Complements the R-tree: preferred for pure point data (no rectangles,
/// half the memory) and provides exact k-nearest-neighbor queries, which the
/// distributed kNN join's tests use as a second, independently-implemented
/// oracle. Built by median splitting, alternating axes.
///
/// # Example
///
/// ```
/// use asj_geom::Point;
/// use asj_index::KdTree;
///
/// let tree = KdTree::build(
///     (0..50).map(|i| (Point::new(i as f64, 0.0), i)).collect(),
/// );
/// let nearest = tree.nearest(Point::new(20.3, 0.0), 2);
/// assert_eq!(*nearest[0].1, 20);
/// assert_eq!(*nearest[1].1, 21);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree<T> {
    /// Points and payloads, reordered into in-order tree layout.
    items: Vec<(Point, T)>,
    bbox: Rect,
}

impl<T> KdTree<T> {
    /// Builds the tree in `O(n log² n)`.
    pub fn build(mut items: Vec<(Point, T)>) -> Self {
        let mut bbox = Rect::empty();
        for (p, _) in &items {
            bbox.extend(*p);
        }
        let len = items.len();
        if len > 1 {
            Self::build_rec(&mut items, 0, len, 0);
        }
        KdTree { items, bbox }
    }

    /// Recursively arranges `items[lo..hi]` so the median (by the split
    /// axis) sits at the midpoint, with smaller values left of it.
    fn build_rec(items: &mut [(Point, T)], lo: usize, hi: usize, depth: usize) {
        if hi - lo <= 1 {
            return;
        }
        let mid = (lo + hi) / 2;
        let x_axis = depth.is_multiple_of(2);
        items[lo..hi].select_nth_unstable_by(mid - lo, |a, b| {
            if x_axis {
                a.0.x.total_cmp(&b.0.x)
            } else {
                a.0.y.total_cmp(&b.0.y)
            }
        });
        Self::build_rec(items, lo, mid, depth + 1);
        Self::build_rec(items, mid + 1, hi, depth + 1);
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Visits every point within distance `eps` of `q`.
    pub fn query_within<F: FnMut(Point, &T)>(&self, q: Point, eps: f64, mut visit: F) {
        if self.items.is_empty() {
            return;
        }
        let e2 = eps * eps;
        self.within_rec(0, self.items.len(), 0, q, e2, &mut visit);
    }

    fn within_rec<F: FnMut(Point, &T)>(
        &self,
        lo: usize,
        hi: usize,
        depth: usize,
        q: Point,
        e2: f64,
        visit: &mut F,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let (p, ref t) = self.items[mid];
        if p.dist2(q) <= e2 {
            visit(p, t);
        }
        let x_axis = depth.is_multiple_of(2);
        let delta = if x_axis { q.x - p.x } else { q.y - p.y };
        let (near, far) = if delta < 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.within_rec(near.0, near.1, depth + 1, q, e2, visit);
        if delta * delta <= e2 {
            self.within_rec(far.0, far.1, depth + 1, q, e2, visit);
        }
    }

    /// The `k` nearest points to `q` as `(distance², payload)` pairs,
    /// ascending by distance (ties in arbitrary but deterministic order).
    pub fn nearest(&self, q: Point, k: usize) -> Vec<(f64, &T)> {
        if k == 0 || self.items.is_empty() {
            return Vec::new();
        }
        // Max-heap of the best k (by distance²).
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        self.nearest_rec(0, self.items.len(), 0, q, k, &mut heap);
        heap.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        heap.into_iter()
            .map(|(d2, idx)| (d2, &self.items[idx].1))
            .collect()
    }

    fn nearest_rec(
        &self,
        lo: usize,
        hi: usize,
        depth: usize,
        q: Point,
        k: usize,
        heap: &mut Vec<(f64, usize)>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let d2 = self.items[mid].0.dist2(q);
        if heap.len() < k {
            heap.push((d2, mid));
            if heap.len() == k {
                heap.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
            }
        } else if d2 < heap[0].0 {
            heap[0] = (d2, mid);
            // Restore "largest first" ordering cheaply (k is small).
            heap.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        }
        let x_axis = depth.is_multiple_of(2);
        let p = self.items[mid].0;
        let delta = if x_axis { q.x - p.x } else { q.y - p.y };
        let (near, far) = if delta < 0.0 {
            ((lo, mid), (mid + 1, hi))
        } else {
            ((mid + 1, hi), (lo, mid))
        };
        self.nearest_rec(near.0, near.1, depth + 1, q, k, heap);
        let worst = if heap.len() < k {
            f64::INFINITY
        } else {
            heap[0].0
        };
        if delta * delta <= worst {
            self.nearest_rec(far.0, far.1, depth + 1, q, k, heap);
        }
    }

    /// Bounding box of the indexed points.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let t: KdTree<usize> = KdTree::build(Vec::new());
        assert!(t.is_empty());
        assert!(t.nearest(Point::new(0.0, 0.0), 3).is_empty());
        let t = KdTree::build(vec![(Point::new(1.0, 1.0), 9usize)]);
        assert_eq!(t.len(), 1);
        let n = t.nearest(Point::new(0.0, 0.0), 3);
        assert_eq!(n.len(), 1);
        assert_eq!(*n[0].1, 9);
    }

    #[test]
    fn within_matches_linear_scan() {
        let items = random_items(1500, 5);
        let t = KdTree::build(items.clone());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..60 {
            let q = Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0));
            let eps = rng.gen_range(0.5..8.0);
            let mut got: Vec<usize> = Vec::new();
            t.query_within(q, eps, |_, &i| got.push(i));
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(p, _)| p.dist2(q) <= eps * eps)
                .map(|&(_, i)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let items = random_items(800, 7);
        let t = KdTree::build(items.clone());
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..40 {
            let q = Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0));
            for k in [1usize, 2, 5, 17] {
                let got: Vec<f64> = t.nearest(q, k).iter().map(|(d2, _)| *d2).collect();
                let mut want: Vec<f64> = items.iter().map(|(p, _)| p.dist2(q)).collect();
                want.sort_unstable_by(f64::total_cmp);
                want.truncate(k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-9, "k={k}: {got:?} vs {want:?}");
                }
            }
        }
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let items = random_items(5, 9);
        let t = KdTree::build(items);
        assert_eq!(t.nearest(Point::new(25.0, 25.0), 50).len(), 5);
    }

    #[test]
    fn duplicate_points_all_retrievable() {
        let items: Vec<(Point, usize)> = (0..10).map(|i| (Point::new(3.0, 3.0), i)).collect();
        let t = KdTree::build(items);
        let mut got = Vec::new();
        t.query_within(Point::new(3.0, 3.0), 0.1, |_, &i| got.push(i));
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(t.nearest(Point::new(3.0, 3.0), 4).len(), 4);
    }

    #[test]
    fn bbox_covers_points() {
        let t = KdTree::build(random_items(100, 11));
        let b = t.bbox();
        assert!(b.width() > 0.0 && b.height() > 0.0);
    }
}
