//! Columnar (SoA) record batches for the local-join kernels.
//!
//! The shuffle delivers partitions as `(cell_id, record)` tuples. The
//! kernels, however, only ever touch three fields — `x`, `y` and the record
//! id — so walking the tuple array makes every comparison a pointer chase
//! through a 40-plus-byte stride. A [`PointBatch`] is built **once per
//! partition at shuffle-receive time**: records are permuted into
//! `(cell, x)` order and their coordinates gathered into flat `xs`/`ys`/
//! `ids` arrays, with one `(key, range)` entry per cell group. The
//! plane-sweep and ε-bucket kernels then stream contiguous `f64` lanes
//! ([`PointsView`]) instead of re-extracting positions per group.
//!
//! Group views come out **sorted by `x`**, which is exactly the
//! precondition the sweep kernel needs — the per-cell sort the kernels
//! would otherwise pay is folded into the single batch build.

use asj_geom::Point;

/// A borrowed SoA slice of points: parallel `x` and `y` lanes.
///
/// Views produced by [`PointBatch::group`] are in ascending-`x` order.
#[derive(Debug, Clone, Copy)]
pub struct PointsView<'a> {
    pub xs: &'a [f64],
    pub ys: &'a [f64],
}

impl<'a> PointsView<'a> {
    pub fn new(xs: &'a [f64], ys: &'a [f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "SoA lanes must be parallel");
        PointsView { xs, ys }
    }

    pub fn empty() -> PointsView<'static> {
        PointsView { xs: &[], ys: &[] }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// A partition's records in columnar form, grouped by cell key.
///
/// Invariants: `keys` is strictly ascending; group `g` occupies
/// `starts[g]..starts[g + 1]` of the `xs`/`ys`/`ids` lanes; within a group
/// the lanes are sorted by `x`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointBatch {
    keys: Vec<u64>,
    starts: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    ids: Vec<u64>,
}

impl PointBatch {
    /// Builds a batch from one shuffled partition. `pos`/`id` extract the
    /// coordinate and identity of a record; the records themselves are not
    /// kept. The sort runs over a light 24-byte permutation entry rather
    /// than the full records, then gathers each lane once.
    pub fn from_keyed<T>(
        part: &[(u64, T)],
        pos: impl Fn(&T) -> Point,
        id: impl Fn(&T) -> u64,
    ) -> PointBatch {
        let n = part.len();
        let mut order: Vec<(u64, f64, u32)> = part
            .iter()
            .enumerate()
            .map(|(i, (k, v))| (*k, pos(v).x, i as u32))
            .collect();
        order.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));

        let mut batch = PointBatch {
            keys: Vec::new(),
            starts: vec![0],
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            ids: Vec::with_capacity(n),
        };
        for &(k, x, i) in &order {
            if batch.keys.last() != Some(&k) {
                if !batch.keys.is_empty() {
                    batch.starts.push(batch.xs.len() as u32);
                }
                batch.keys.push(k);
            }
            let rec = &part[i as usize].1;
            batch.xs.push(x);
            batch.ys.push(pos(rec).y);
            batch.ids.push(id(rec));
        }
        batch.starts.push(batch.xs.len() as u32);
        batch
    }

    /// Distinct cell keys, ascending.
    #[inline]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Number of cell groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }

    /// Total points across groups.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.xs.len()
    }

    #[inline]
    fn range(&self, g: usize) -> std::ops::Range<usize> {
        self.starts[g] as usize..self.starts[g + 1] as usize
    }

    /// The SoA view of group `g`, sorted by `x`.
    #[inline]
    pub fn group(&self, g: usize) -> PointsView<'_> {
        let r = self.range(g);
        PointsView {
            xs: &self.xs[r.clone()],
            ys: &self.ys[r],
        }
    }

    /// The record ids of group `g`, parallel to [`PointBatch::group`].
    #[inline]
    pub fn group_ids(&self, g: usize) -> &[u64] {
        &self.ids[self.range(g)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(rows: &[(u64, f64, f64, u64)]) -> Vec<(u64, (Point, u64))> {
        rows.iter()
            .map(|&(k, x, y, id)| (k, (Point::new(x, y), id)))
            .collect()
    }

    fn build(part: &[(u64, (Point, u64))]) -> PointBatch {
        PointBatch::from_keyed(part, |v| v.0, |v| v.1)
    }

    #[test]
    fn groups_by_key_and_sorts_by_x() {
        let part = keyed(&[
            (2, 5.0, 1.0, 100),
            (1, 9.0, 2.0, 101),
            (2, 3.0, 4.0, 102),
            (1, 0.5, 8.0, 103),
            (2, 4.0, 0.0, 104),
        ]);
        let b = build(&part);
        assert_eq!(b.keys(), &[1, 2]);
        assert_eq!(b.num_groups(), 2);
        assert_eq!(b.num_points(), 5);
        let g1 = b.group(0);
        assert_eq!(g1.xs, &[0.5, 9.0]);
        assert_eq!(g1.ys, &[8.0, 2.0]);
        assert_eq!(b.group_ids(0), &[103, 101]);
        let g2 = b.group(1);
        assert_eq!(g2.xs, &[3.0, 4.0, 5.0]);
        assert_eq!(g2.ys, &[4.0, 0.0, 1.0]);
        assert_eq!(b.group_ids(1), &[102, 104, 100]);
    }

    #[test]
    fn empty_partition_yields_empty_batch() {
        let b = build(&[]);
        assert_eq!(b.num_groups(), 0);
        assert_eq!(b.num_points(), 0);
        assert!(b.keys().is_empty());
    }

    #[test]
    fn single_group_spans_everything() {
        let part = keyed(&[(7, 2.0, 0.0, 1), (7, 1.0, 0.0, 2)]);
        let b = build(&part);
        assert_eq!(b.keys(), &[7]);
        assert_eq!(b.group(0).len(), 2);
        assert_eq!(b.group_ids(0), &[2, 1]);
    }

    #[test]
    fn view_lanes_stay_parallel() {
        let part = keyed(&[(1, 1.0, 10.0, 5), (1, 2.0, 20.0, 6), (2, 3.0, 30.0, 7)]);
        let b = build(&part);
        for g in 0..b.num_groups() {
            let v = b.group(g);
            assert_eq!(v.xs.len(), v.ys.len());
            assert_eq!(v.len(), b.group_ids(g).len());
            assert!(v.xs.windows(2).all(|w| w[0] <= w[1]), "group {g} unsorted");
        }
    }

    #[test]
    #[should_panic(expected = "SoA lanes must be parallel")]
    fn mismatched_lanes_rejected() {
        let _ = PointsView::new(&[1.0, 2.0], &[1.0]);
    }
}
