//! Partition-local ε-distance join kernels.
//!
//! After the shuffle, each partition holds the R and S records of one or more
//! grid cells; the kernel enumerates the result pairs of one cell group.
//!
//! * [`nested_loop`] reproduces the paper's execution exactly: the local
//!   hash join on the cell key produces all `r × s` candidate pairs, which
//!   are immediately refined with the true distance (Algorithm 5, line 9).
//!   The per-cell cost is therefore `|R_i| · |S_i|` — the cost model used by
//!   Table 1 and the LPT scheduler.
//! * [`plane_sweep`] is the classic forward-sweep alternative (used by the
//!   original PBSM and by \[21\]); asymptotically cheaper on large cells, kept
//!   here for the kernel ablation benchmark.
//!
//! Both kernels report the number of distance computations performed so
//! benches can compare pruning power, and both emit pairs through a callback
//! so callers can count, materialize or stream results.

use asj_geom::Point;

/// Result-pair statistics of one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Candidate pairs whose exact distance was computed.
    pub candidates: u64,
    /// Pairs within ε (reported through the callback).
    pub results: u64,
}

impl KernelStats {
    pub fn merge(&mut self, other: &KernelStats) {
        self.candidates += other.candidates;
        self.results += other.results;
    }
}

/// All-pairs kernel with distance refinement — the paper's local join.
///
/// `pos_a`/`pos_b` extract coordinates from the record types; `on_pair` is
/// invoked once per result pair `(a_index, b_index)`.
pub fn nested_loop<A, B>(
    a: &[A],
    b: &[B],
    eps: f64,
    pos_a: impl Fn(&A) -> Point,
    pos_b: impl Fn(&B) -> Point,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let e2 = eps * eps;
    let mut stats = KernelStats::default();
    for (i, ra) in a.iter().enumerate() {
        let pa = pos_a(ra);
        for (j, rb) in b.iter().enumerate() {
            stats.candidates += 1;
            if pa.dist2(pos_b(rb)) <= e2 {
                stats.results += 1;
                on_pair(i, j);
            }
        }
    }
    stats
}

/// Forward plane-sweep kernel: both sides are sorted by `x`, and each record
/// is only compared against records of the other side within an `x`-window of
/// ε (with a `|Δy| ≤ ε` pre-filter before the exact distance).
pub fn plane_sweep<A, B>(
    a: &[A],
    b: &[B],
    eps: f64,
    pos_a: impl Fn(&A) -> Point,
    pos_b: impl Fn(&B) -> Point,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let e2 = eps * eps;
    let mut stats = KernelStats::default();
    // Index arrays sorted by x.
    let mut ia: Vec<usize> = (0..a.len()).collect();
    let mut ib: Vec<usize> = (0..b.len()).collect();
    ia.sort_unstable_by(|&p, &q| pos_a(&a[p]).x.total_cmp(&pos_a(&a[q]).x));
    ib.sort_unstable_by(|&p, &q| pos_b(&b[p]).x.total_cmp(&pos_b(&b[q]).x));

    let mut start_b = 0usize;
    for &i in &ia {
        let pa = pos_a(&a[i]);
        // Advance the window start: b's with x < pa.x - eps can never match
        // this or any later a (a is processed in ascending x).
        while start_b < ib.len() && pos_b(&b[ib[start_b]]).x < pa.x - eps {
            start_b += 1;
        }
        for &j in &ib[start_b..] {
            let pb = pos_b(&b[j]);
            if pb.x > pa.x + eps {
                break;
            }
            if (pb.y - pa.y).abs() > eps {
                continue;
            }
            stats.candidates += 1;
            if pa.dist2(pb) <= e2 {
                stats.results += 1;
                on_pair(i, j);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn id(p: &Point) -> Point {
        *p
    }

    fn random_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
            .collect()
    }

    fn collect_pairs(
        kernel: impl Fn(&[Point], &[Point], f64, &mut Vec<(usize, usize)>) -> KernelStats,
        a: &[Point],
        b: &[Point],
        eps: f64,
    ) -> (Vec<(usize, usize)>, KernelStats) {
        let mut pairs = Vec::new();
        let stats = kernel(a, b, eps, &mut pairs);
        pairs.sort_unstable();
        (pairs, stats)
    }

    fn nl(a: &[Point], b: &[Point], eps: f64, out: &mut Vec<(usize, usize)>) -> KernelStats {
        nested_loop(a, b, eps, id, id, |i, j| out.push((i, j)))
    }

    fn ps(a: &[Point], b: &[Point], eps: f64, out: &mut Vec<(usize, usize)>) -> KernelStats {
        plane_sweep(a, b, eps, id, id, |i, j| out.push((i, j)))
    }

    #[test]
    fn kernels_agree_on_random_input() {
        for seed in 0..5 {
            let a = random_points(300, seed, 10.0);
            let b = random_points(300, seed + 100, 10.0);
            let (p1, s1) = collect_pairs(nl, &a, &b, 0.7);
            let (p2, s2) = collect_pairs(ps, &a, &b, 0.7);
            assert_eq!(p1, p2, "seed {seed}");
            assert_eq!(s1.results, s2.results);
            assert!(!p1.is_empty(), "test should exercise matches");
        }
    }

    #[test]
    fn plane_sweep_prunes_candidates() {
        let a = random_points(500, 1, 50.0);
        let b = random_points(500, 2, 50.0);
        let (_, s_nl) = collect_pairs(nl, &a, &b, 1.0);
        let (_, s_ps) = collect_pairs(ps, &a, &b, 1.0);
        assert_eq!(s_nl.candidates, 500 * 500);
        assert!(
            s_ps.candidates < s_nl.candidates / 5,
            "sweep should prune: {} vs {}",
            s_ps.candidates,
            s_nl.candidates
        );
        assert_eq!(s_nl.results, s_ps.results);
    }

    #[test]
    fn empty_inputs() {
        let a: Vec<Point> = Vec::new();
        let b = random_points(10, 3, 5.0);
        let (p, s) = collect_pairs(nl, &a, &b, 1.0);
        assert!(p.is_empty());
        assert_eq!(s, KernelStats::default());
        let (p, _) = collect_pairs(ps, &a, &b, 1.0);
        assert!(p.is_empty());
        let (p, _) = collect_pairs(ps, &b, &a, 1.0);
        assert!(p.is_empty());
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let a = vec![Point::new(0.0, 0.0)];
        let b = vec![Point::new(3.0, 4.0)];
        let (p, _) = collect_pairs(nl, &a, &b, 5.0);
        assert_eq!(p, vec![(0, 0)]);
        let (p, _) = collect_pairs(ps, &a, &b, 5.0);
        assert_eq!(p, vec![(0, 0)]);
    }

    #[test]
    fn stats_merge_adds() {
        let mut s = KernelStats {
            candidates: 5,
            results: 2,
        };
        s.merge(&KernelStats {
            candidates: 1,
            results: 1,
        });
        assert_eq!(
            s,
            KernelStats {
                candidates: 6,
                results: 3
            }
        );
    }

    #[test]
    fn duplicate_coordinates_produce_all_pairs() {
        let a = vec![Point::new(1.0, 1.0); 4];
        let b = vec![Point::new(1.0, 1.0); 3];
        let (p1, _) = collect_pairs(nl, &a, &b, 0.5);
        let (p2, _) = collect_pairs(ps, &a, &b, 0.5);
        assert_eq!(p1.len(), 12);
        assert_eq!(p1, p2);
    }
}
