//! Partition-local ε-distance join kernels and the adaptive selector that
//! all distributed algorithms route through.
//!
//! After the shuffle, each partition holds the R and S records of one or more
//! grid cells; the kernel enumerates the result pairs of one cell group.
//!
//! * [`nested_loop`] reproduces the paper's execution exactly: the local
//!   hash join on the cell key produces all `r × s` candidate pairs, which
//!   are immediately refined with the true distance (Algorithm 5, line 9).
//!   The per-cell cost is therefore `|R_i| · |S_i|` — the cost model used by
//!   Table 1 and the LPT scheduler.
//! * [`plane_sweep`] is the classic forward-sweep alternative (used by the
//!   original PBSM and by \[21\]); asymptotically cheaper on large cells.
//! * [`grid_bucket`] hashes one side into ε-sized buckets and probes each
//!   point of the other side against the 3×3 neighborhood — it prunes in
//!   both axes and wins when the group extent dwarfs ε (quadtree leaves).
//!
//! [`local_join`] is the shared entry point: it resolves a requested
//! [`LocalKernel`] (including `Auto`, which consults the calibrated
//! [`KernelCostModel`] per group using the *measured* group extent) and runs
//! the chosen kernel over coordinate arrays extracted **once** per
//! invocation. [`local_self_join`] and [`local_join_rects`] are the
//! self-join and envelope (extent) variants.
//!
//! Candidate-count semantics: the nested loop counts every `r·s` pair; the
//! plane sweep and the bucket grid count exactly the pairs passing the
//! `|Δx| ≤ ε ∧ |Δy| ≤ ε` window — by construction the two prefiltering
//! kernels report **identical** candidate counts, and `Auto` only picks the
//! nested loop where its count cannot exceed theirs (tiny groups, or groups
//! whose extent fits in an ε × ε box so every pair passes the window).

use crate::batch::PointsView;
use asj_core::{KernelCostModel, KernelKind, LocalKernel};
use asj_geom::{Point, Rect};
use std::sync::OnceLock;
use std::time::Instant;

/// Result-pair statistics of one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Candidate pairs whose exact distance was computed.
    pub candidates: u64,
    /// Pairs within ε (reported through the callback).
    pub results: u64,
}

impl KernelStats {
    pub fn merge(&mut self, other: &KernelStats) {
        self.candidates += other.candidates;
        self.results += other.results;
    }
}

/// What [`local_join`] (and variants) did for one cell group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalJoinOutcome {
    /// The kernel that actually ran (the resolution of `Auto`).
    pub kind: KernelKind,
    /// Candidate/result tallies of the run.
    pub stats: KernelStats,
}

/// One extracted coordinate: `(x, y, original index)`. Extracting once per
/// kernel invocation keeps the hot loops free of position-closure calls.
type Coord = (f64, f64, u32);

fn extract<A>(recs: &[A], pos: impl Fn(&A) -> Point) -> Vec<Coord> {
    recs.iter()
        .enumerate()
        .map(|(i, r)| {
            let p = pos(r);
            (p.x, p.y, i as u32)
        })
        .collect()
}

fn sort_by_x(coords: &mut [Coord]) {
    coords.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
}

/// Bounding extent `(width, height)` of the union of both coordinate sets.
fn union_extent(a: &[Coord], b: &[Coord]) -> (f64, f64) {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y, _) in a.iter().chain(b) {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    ((max_x - min_x).max(0.0), (max_y - min_y).max(0.0))
}

/// All-pairs kernel with distance refinement — the paper's local join.
///
/// `pos_a`/`pos_b` extract coordinates from the record types; `on_pair` is
/// invoked once per result pair `(a_index, b_index)`.
pub fn nested_loop<A, B>(
    a: &[A],
    b: &[B],
    eps: f64,
    pos_a: impl Fn(&A) -> Point,
    pos_b: impl Fn(&B) -> Point,
    on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let ca = extract(a, pos_a);
    let cb = extract(b, pos_b);
    nested_loop_coords(&ca, &cb, eps, on_pair)
}

fn nested_loop_coords(
    a: &[Coord],
    b: &[Coord],
    eps: f64,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let e2 = eps * eps;
    let mut stats = KernelStats::default();
    for &(ax, ay, ai) in a {
        for &(bx, by, bi) in b {
            stats.candidates += 1;
            if Point::new(ax, ay).dist2(Point::new(bx, by)) <= e2 {
                stats.results += 1;
                on_pair(ai as usize, bi as usize);
            }
        }
    }
    stats
}

/// Forward plane-sweep kernel: both sides are sorted by `x`, and each record
/// is only compared against records of the other side within an `x`-window of
/// ε (with a `|Δy| ≤ ε` pre-filter before the exact distance).
///
/// Coordinates are extracted into flat sorted arrays **once** up front; the
/// scan loop never re-invokes the position closures.
pub fn plane_sweep<A, B>(
    a: &[A],
    b: &[B],
    eps: f64,
    pos_a: impl Fn(&A) -> Point,
    pos_b: impl Fn(&B) -> Point,
    on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let mut ca = extract(a, pos_a);
    let mut cb = extract(b, pos_b);
    sort_by_x(&mut ca);
    sort_by_x(&mut cb);
    sweep_sorted(&ca, &cb, eps, on_pair)
}

fn sweep_sorted(
    a: &[Coord],
    b: &[Coord],
    eps: f64,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let e2 = eps * eps;
    let mut stats = KernelStats::default();
    let mut start_b = 0usize;
    for &(ax, ay, ai) in a {
        // Advance the window start: b's with x < ax - eps can never match
        // this or any later a (a is processed in ascending x).
        while start_b < b.len() && b[start_b].0 < ax - eps {
            start_b += 1;
        }
        for &(bx, by, bi) in &b[start_b..] {
            if bx > ax + eps {
                break;
            }
            if (by - ay).abs() > eps {
                continue;
            }
            stats.candidates += 1;
            if Point::new(ax, ay).dist2(Point::new(bx, by)) <= e2 {
                stats.results += 1;
                on_pair(ai as usize, bi as usize);
            }
        }
    }
    stats
}

/// One side bucketed into an ε × ε grid (anchored at the group's minimum
/// corner), the other side probing the 3×3 bucket neighborhood of each
/// point. Candidate counting applies the same `|Δx| ≤ ε ∧ |Δy| ≤ ε` window
/// as the plane sweep, so both report identical candidate counts.
pub fn grid_bucket<A, B>(
    a: &[A],
    b: &[B],
    eps: f64,
    pos_a: impl Fn(&A) -> Point,
    pos_b: impl Fn(&B) -> Point,
    on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let ca = extract(a, pos_a);
    let cb = extract(b, pos_b);
    bucket_probe(&ca, &cb, eps, on_pair)
}

/// Bucket coordinate of a point relative to the group origin.
#[inline]
fn bucket_of(x: f64, y: f64, ox: f64, oy: f64, eps: f64) -> (i64, i64) {
    (
        ((x - ox) / eps).floor() as i64,
        ((y - oy) / eps).floor() as i64,
    )
}

/// `(bucket, original coord)` of one bucketed point, sorted by bucket.
type Bucketed = ((i64, i64), Coord);

fn bucketize(coords: &[Coord], ox: f64, oy: f64, eps: f64) -> Vec<Bucketed> {
    let mut out: Vec<Bucketed> = coords
        .iter()
        .map(|&(x, y, i)| (bucket_of(x, y, ox, oy, eps), (x, y, i)))
        .collect();
    out.sort_unstable_by_key(|p| p.0);
    out
}

/// Contiguous range of `sorted` covering buckets `(bx, by_lo ..= by_hi)`.
fn bucket_range(sorted: &[Bucketed], bx: i64, by_lo: i64, by_hi: i64) -> &[Bucketed] {
    let lo = sorted.partition_point(|&(b, _)| b < (bx, by_lo));
    let hi = sorted[lo..].partition_point(|&(b, _)| b <= (bx, by_hi)) + lo;
    &sorted[lo..hi]
}

fn bucket_probe(
    a: &[Coord],
    b: &[Coord],
    eps: f64,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let mut stats = KernelStats::default();
    if a.is_empty() || b.is_empty() {
        return stats;
    }
    let e2 = eps * eps;
    let ox = a.iter().chain(b).map(|c| c.0).fold(f64::INFINITY, f64::min);
    let oy = a.iter().chain(b).map(|c| c.1).fold(f64::INFINITY, f64::min);
    let sb = bucketize(b, ox, oy, eps);
    for &(ax, ay, ai) in a {
        let (bx, by) = bucket_of(ax, ay, ox, oy, eps);
        for dx in -1..=1i64 {
            for &(_, (px, py, bi)) in bucket_range(&sb, bx + dx, by - 1, by + 1) {
                if (px - ax).abs() > eps || (py - ay).abs() > eps {
                    continue;
                }
                stats.candidates += 1;
                if Point::new(ax, ay).dist2(Point::new(px, py)) <= e2 {
                    stats.results += 1;
                    on_pair(ai as usize, bi as usize);
                }
            }
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// Columnar (SoA) kernel variants
// ---------------------------------------------------------------------------
//
// Same predicates, same candidate semantics, different layout: the loops
// below stream the flat `xs`/`ys` lanes of a [`PointsView`] (built once per
// partition by [`PointBatch`](crate::PointBatch)) instead of walking
// `(x, y, idx)` tuples. `on_pair` receives *view positions*; callers map
// them through the batch's parallel id lane.

/// Bounding extent `(width, height)` of the union of two views. Min/max
/// folds are order-independent, so this matches [`union_extent`] bit-for-bit
/// on the same point set — `Auto` resolves identically for either layout.
fn view_extent(a: PointsView<'_>, b: PointsView<'_>) -> (f64, f64) {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in a.xs.iter().chain(b.xs) {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
    }
    for &y in a.ys.iter().chain(b.ys) {
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    ((max_x - min_x).max(0.0), (max_y - min_y).max(0.0))
}

/// All-pairs kernel over SoA lanes.
pub fn nested_loop_view(
    a: PointsView<'_>,
    b: PointsView<'_>,
    eps: f64,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let e2 = eps * eps;
    let mut stats = KernelStats::default();
    for i in 0..a.len() {
        let (ax, ay) = (a.xs[i], a.ys[i]);
        for j in 0..b.len() {
            stats.candidates += 1;
            if Point::new(ax, ay).dist2(Point::new(b.xs[j], b.ys[j])) <= e2 {
                stats.results += 1;
                on_pair(i, j);
            }
        }
    }
    stats
}

/// Forward plane-sweep over SoA lanes. Both views must be in ascending-`x`
/// order (the [`PointBatch`](crate::PointBatch) group invariant); the window
/// scan then reads the `xs` lane sequentially — one cache line carries eight
/// candidates.
pub fn sweep_view(
    a: PointsView<'_>,
    b: PointsView<'_>,
    eps: f64,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let e2 = eps * eps;
    let mut stats = KernelStats::default();
    let mut start_b = 0usize;
    for i in 0..a.len() {
        let (ax, ay) = (a.xs[i], a.ys[i]);
        while start_b < b.len() && b.xs[start_b] < ax - eps {
            start_b += 1;
        }
        for j in start_b..b.len() {
            let bx = b.xs[j];
            if bx > ax + eps {
                break;
            }
            let by = b.ys[j];
            if (by - ay).abs() > eps {
                continue;
            }
            stats.candidates += 1;
            if Point::new(ax, ay).dist2(Point::new(bx, by)) <= e2 {
                stats.results += 1;
                on_pair(i, j);
            }
        }
    }
    stats
}

fn bucketize_view(v: PointsView<'_>, ox: f64, oy: f64, eps: f64) -> Vec<Bucketed> {
    let mut out: Vec<Bucketed> =
        v.xs.iter()
            .zip(v.ys)
            .enumerate()
            .map(|(i, (&x, &y))| (bucket_of(x, y, ox, oy, eps), (x, y, i as u32)))
            .collect();
    out.sort_unstable_by_key(|p| p.0);
    out
}

/// ε-bucket probe over SoA lanes: `b` is bucketed once (carrying its
/// coordinates into the bucket-sorted array, so probes stay contiguous),
/// `a` streams its lanes and probes the 3×3 neighborhood.
pub fn bucket_probe_view(
    a: PointsView<'_>,
    b: PointsView<'_>,
    eps: f64,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let mut stats = KernelStats::default();
    if a.is_empty() || b.is_empty() {
        return stats;
    }
    let e2 = eps * eps;
    let ox =
        a.xs.iter()
            .chain(b.xs)
            .fold(f64::INFINITY, |m, &x| m.min(x));
    let oy =
        a.ys.iter()
            .chain(b.ys)
            .fold(f64::INFINITY, |m, &y| m.min(y));
    let sb = bucketize_view(b, ox, oy, eps);
    for i in 0..a.len() {
        let (ax, ay) = (a.xs[i], a.ys[i]);
        let (bx, by) = bucket_of(ax, ay, ox, oy, eps);
        for dx in -1..=1i64 {
            for &(_, (px, py, bi)) in bucket_range(&sb, bx + dx, by - 1, by + 1) {
                if (px - ax).abs() > eps || (py - ay).abs() > eps {
                    continue;
                }
                stats.candidates += 1;
                if Point::new(ax, ay).dist2(Point::new(px, py)) <= e2 {
                    stats.results += 1;
                    on_pair(i, bi as usize);
                }
            }
        }
    }
    stats
}

/// Columnar twin of [`local_join`]: resolves `requested` against the views'
/// measured extent and runs the chosen SoA kernel. Both views must be in
/// ascending-`x` order. `on_pair` receives view positions.
///
/// Resolution, candidate counts and result pairs are identical to
/// [`local_join`] over the same point groups — only the memory layout (and
/// hence the wall clock) differs.
pub fn local_join_view(
    requested: LocalKernel,
    model: &KernelCostModel,
    eps: f64,
    a: PointsView<'_>,
    b: PointsView<'_>,
    on_pair: impl FnMut(usize, usize),
) -> LocalJoinOutcome {
    let (w, h) = view_extent(a, b);
    let kind = model.resolve(requested, a.len() as u64, b.len() as u64, eps, w, h);
    let stats = match kind {
        KernelKind::NestedLoop => nested_loop_view(a, b, eps, on_pair),
        KernelKind::PlaneSweep => sweep_view(a, b, eps, on_pair),
        KernelKind::GridBucket => bucket_probe_view(a, b, eps, on_pair),
    };
    LocalJoinOutcome { kind, stats }
}

/// Shared adaptive entry point for the two-sided point join: resolves
/// `requested` (consulting `model` per group for `Auto`, using the group's
/// **measured** extent) and runs the chosen kernel.
///
/// `presorted_by_x` promises that both slices are already in ascending-`x`
/// order (the engine's per-partition sort-reuse); the plane sweep then skips
/// its per-cell sort.
#[allow(clippy::too_many_arguments)]
pub fn local_join<A, B>(
    requested: LocalKernel,
    model: &KernelCostModel,
    eps: f64,
    presorted_by_x: bool,
    a: &[A],
    b: &[B],
    pos_a: impl Fn(&A) -> Point,
    pos_b: impl Fn(&B) -> Point,
    on_pair: impl FnMut(usize, usize),
) -> LocalJoinOutcome {
    let ca = extract(a, pos_a);
    let cb = extract(b, pos_b);
    let (w, h) = union_extent(&ca, &cb);
    let kind = model.resolve(requested, a.len() as u64, b.len() as u64, eps, w, h);
    let stats = match kind {
        KernelKind::NestedLoop => nested_loop_coords(&ca, &cb, eps, on_pair),
        KernelKind::PlaneSweep => {
            let (mut ca, mut cb) = (ca, cb);
            if !presorted_by_x {
                sort_by_x(&mut ca);
                sort_by_x(&mut cb);
            }
            sweep_sorted(&ca, &cb, eps, on_pair)
        }
        KernelKind::GridBucket => bucket_probe(&ca, &cb, eps, on_pair),
    };
    LocalJoinOutcome { kind, stats }
}

/// Self-join variant of [`local_join`]: emits each unordered index pair
/// `i < j` (in input order) at most once. Candidate semantics mirror the
/// two-sided kernels: nested loop counts all `n(n-1)/2` pairs, sweep and
/// bucket count window-passing pairs only.
///
/// `Auto` resolution reuses the two-sided model with `r = s = n`: that
/// scales every prediction by exactly 2× relative to the true self-join
/// work, so the argmin — and hence the choice — is unchanged.
pub fn local_self_join<A>(
    requested: LocalKernel,
    model: &KernelCostModel,
    eps: f64,
    pts: &[A],
    pos: impl Fn(&A) -> Point,
    on_pair: impl FnMut(usize, usize),
) -> LocalJoinOutcome {
    let coords = extract(pts, pos);
    let (w, h) = union_extent(&coords, &[]);
    let n = pts.len() as u64;
    let kind = model.resolve(requested, n, n, eps, w, h);
    let stats = match kind {
        KernelKind::NestedLoop => self_nested_loop(&coords, eps, on_pair),
        KernelKind::PlaneSweep => {
            let mut coords = coords;
            sort_by_x(&mut coords);
            self_sweep_sorted(&coords, eps, on_pair)
        }
        KernelKind::GridBucket => self_bucket_probe(&coords, eps, on_pair),
    };
    LocalJoinOutcome { kind, stats }
}

fn self_nested_loop(pts: &[Coord], eps: f64, mut on_pair: impl FnMut(usize, usize)) -> KernelStats {
    let e2 = eps * eps;
    let mut stats = KernelStats::default();
    for (i, &(ax, ay, ai)) in pts.iter().enumerate() {
        for &(bx, by, bi) in &pts[i + 1..] {
            stats.candidates += 1;
            if Point::new(ax, ay).dist2(Point::new(bx, by)) <= e2 {
                stats.results += 1;
                on_pair(ai as usize, bi as usize);
            }
        }
    }
    stats
}

fn self_sweep_sorted(
    pts: &[Coord],
    eps: f64,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let e2 = eps * eps;
    let mut stats = KernelStats::default();
    for (i, &(ax, ay, ai)) in pts.iter().enumerate() {
        for &(bx, by, bi) in &pts[i + 1..] {
            if bx - ax > eps {
                break;
            }
            if (by - ay).abs() > eps {
                continue;
            }
            stats.candidates += 1;
            if Point::new(ax, ay).dist2(Point::new(bx, by)) <= e2 {
                stats.results += 1;
                on_pair(ai as usize, bi as usize);
            }
        }
    }
    stats
}

fn self_bucket_probe(
    pts: &[Coord],
    eps: f64,
    mut on_pair: impl FnMut(usize, usize),
) -> KernelStats {
    let mut stats = KernelStats::default();
    if pts.is_empty() {
        return stats;
    }
    let e2 = eps * eps;
    let ox = pts.iter().map(|c| c.0).fold(f64::INFINITY, f64::min);
    let oy = pts.iter().map(|c| c.1).fold(f64::INFINITY, f64::min);
    let sorted = bucketize(pts, ox, oy, eps);
    // Each unordered pair is visited exactly once: within a bucket by list
    // position, across buckets from the lexicographically smaller one via
    // the four forward offsets.
    const FORWARD: [(i64, i64); 4] = [(0, 1), (1, -1), (1, 0), (1, 1)];
    let mut window = |a: Coord, b: Coord, stats: &mut KernelStats| {
        let (ax, ay, ai) = a;
        let (bx, by, bi) = b;
        if (bx - ax).abs() > eps || (by - ay).abs() > eps {
            return;
        }
        stats.candidates += 1;
        if Point::new(ax, ay).dist2(Point::new(bx, by)) <= e2 {
            stats.results += 1;
            on_pair(ai as usize, bi as usize);
        }
    };
    for (p, &(bucket, ca)) in sorted.iter().enumerate() {
        for &(_, cb) in sorted[p + 1..].iter().take_while(|&&(b, _)| b == bucket) {
            window(ca, cb, &mut stats);
        }
        for (dx, dy) in FORWARD {
            for &(_, cb) in bucket_range(&sorted, bucket.0 + dx, bucket.1 + dy, bucket.1 + dy) {
                window(ca, cb, &mut stats);
            }
        }
    }
    stats
}

/// Envelope (extent) variant: enumerates candidate index pairs whose
/// rectangles may interact and hands each to `on_candidate`, which applies
/// the caller's exact predicate (reference-point dedup + true shape
/// distance) and reports whether the pair is a result.
///
/// The nested loop enumerates all `r·s` pairs; the sweep sorts by `min_x`
/// and enumerates only pairs whose rectangles overlap in both axes (the
/// caller is expected to pass ε-expanded rectangles on one side). A
/// `GridBucket` request falls back to the sweep — ε-bucketing is not
/// meaningful for arbitrarily wide envelopes.
#[allow(clippy::too_many_arguments)]
pub fn local_join_rects<A, B>(
    requested: LocalKernel,
    model: &KernelCostModel,
    eps: f64,
    a: &[A],
    b: &[B],
    rect_a: impl Fn(&A) -> Rect,
    rect_b: impl Fn(&B) -> Rect,
    mut on_candidate: impl FnMut(usize, usize) -> bool,
) -> LocalJoinOutcome {
    // (min_x, max_x, min_y, max_y, index)
    let ext = |r: Rect, i: usize| (r.min_x, r.max_x, r.min_y, r.max_y, i as u32);
    let mut ra: Vec<_> = a
        .iter()
        .enumerate()
        .map(|(i, v)| ext(rect_a(v), i))
        .collect();
    let mut rb: Vec<_> = b
        .iter()
        .enumerate()
        .map(|(i, v)| ext(rect_b(v), i))
        .collect();
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(lx, hx, ly, hy, _) in ra.iter().chain(&rb) {
        min_x = min_x.min(lx);
        max_x = max_x.max(hx);
        min_y = min_y.min(ly);
        max_y = max_y.max(hy);
    }
    let (w, h) = ((max_x - min_x).max(0.0), (max_y - min_y).max(0.0));
    let kind = match model.resolve(requested, a.len() as u64, b.len() as u64, eps, w, h) {
        KernelKind::GridBucket => KernelKind::PlaneSweep,
        k => k,
    };
    let mut stats = KernelStats::default();
    match kind {
        KernelKind::NestedLoop => {
            for &(.., ai) in &ra {
                for &(.., bi) in &rb {
                    stats.candidates += 1;
                    if on_candidate(ai as usize, bi as usize) {
                        stats.results += 1;
                    }
                }
            }
        }
        _ => {
            ra.sort_unstable_by(|p, q| p.0.total_cmp(&q.0));
            rb.sort_unstable_by(|p, q| p.0.total_cmp(&q.0));
            // b rectangles are sorted by min_x, but their right edges are
            // not monotone: the window start may only skip b's that end
            // before any later a can begin.
            let max_w_b = rb
                .iter()
                .map(|&(lx, hx, ..)| hx - lx)
                .fold(0.0f64, f64::max);
            let mut start_b = 0usize;
            for &(alx, ahx, aly, ahy, ai) in &ra {
                while start_b < rb.len() && rb[start_b].0 < alx - max_w_b {
                    start_b += 1;
                }
                for &(blx, bhx, bly, bhy, bi) in &rb[start_b..] {
                    if blx > ahx {
                        break;
                    }
                    if bhx < alx || bhy < aly || bly > ahy {
                        continue;
                    }
                    stats.candidates += 1;
                    if on_candidate(ai as usize, bi as usize) {
                        stats.results += 1;
                    }
                }
            }
        }
    }
    LocalJoinOutcome { kind, stats }
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

/// One-shot microbenchmark deriving the [`KernelCostModel`] constants from
/// this machine, memoized process-wide so every `Cluster` in a process (and
/// hence every traced/untraced or repeated run) resolves `Auto` with the
/// same constants. Runs in a few milliseconds on first use.
pub fn calibrate_cost_model() -> KernelCostModel {
    static CALIBRATION: OnceLock<KernelCostModel> = OnceLock::new();
    *CALIBRATION.get_or_init(measure_cost_model)
}

/// SplitMix64: tiny deterministic generator for the calibration points.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synth_points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let x = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            let y = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            Point::new(x, y)
        })
        .collect()
}

/// Best-of-3 wall time of `f` in nanoseconds.
fn best_time_ns(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn measure_cost_model() -> KernelCostModel {
    let n = 512usize;
    let a = synth_points(n, 0xA11C_E5ED);
    let b = synth_points(n, 0xB0B5_EED5);
    let id = |p: &Point| *p;
    let sink = |_: usize, _: usize| {};
    let pairs = (n * n) as f64;
    let points = (2 * n) as f64;
    // ε chosen so the window prunes hard (fx = 2ε = 0.1 of the unit square):
    // the pair terms then dominate measurably over the setup terms.
    let eps = 0.05;
    // ε so small that no pair survives the window: isolates per-point setup.
    let eps0 = 1e-9;

    let defaults = KernelCostModel::default();
    let clamp = |v: f64, fallback: f64| {
        if v.is_finite() && v > 0.0 {
            v.clamp(1e-3, 1e4)
        } else {
            fallback
        }
    };

    let t_nl = best_time_ns(|| {
        nested_loop(&a, &b, eps, id, id, sink);
    });
    let nl_pair = clamp(t_nl / pairs, defaults.nl_pair);

    let t_ps0 = best_time_ns(|| {
        plane_sweep(&a, &b, eps0, id, id, sink);
    });
    let ps_point = clamp(t_ps0 / points, defaults.ps_point);
    let t_ps = best_time_ns(|| {
        plane_sweep(&a, &b, eps, id, id, sink);
    });
    // The sweep touches ~2ε·n² pairs in the x-window of the unit square.
    let ps_pair = clamp(
        (t_ps - points * ps_point) / (pairs * 2.0 * eps),
        defaults.ps_pair,
    );

    let t_b0 = best_time_ns(|| {
        grid_bucket(&a, &b, eps0, id, id, sink);
    });
    let bucket_point = clamp(t_b0 / points, defaults.bucket_point);
    let t_b = best_time_ns(|| {
        grid_bucket(&a, &b, eps, id, id, sink);
    });
    // Each probe visits a 3ε × 3ε neighborhood: ~(3ε)²·n² pairs.
    let bucket_pair = clamp(
        (t_b - points * bucket_point) / (pairs * 9.0 * eps * eps),
        defaults.bucket_pair,
    );

    KernelCostModel {
        nl_pair,
        ps_point,
        ps_pair,
        bucket_point,
        bucket_pair,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn id(p: &Point) -> Point {
        *p
    }

    fn random_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
            .collect()
    }

    fn collect_pairs(
        kernel: impl Fn(&[Point], &[Point], f64, &mut Vec<(usize, usize)>) -> KernelStats,
        a: &[Point],
        b: &[Point],
        eps: f64,
    ) -> (Vec<(usize, usize)>, KernelStats) {
        let mut pairs = Vec::new();
        let stats = kernel(a, b, eps, &mut pairs);
        pairs.sort_unstable();
        (pairs, stats)
    }

    fn nl(a: &[Point], b: &[Point], eps: f64, out: &mut Vec<(usize, usize)>) -> KernelStats {
        nested_loop(a, b, eps, id, id, |i, j| out.push((i, j)))
    }

    fn ps(a: &[Point], b: &[Point], eps: f64, out: &mut Vec<(usize, usize)>) -> KernelStats {
        plane_sweep(a, b, eps, id, id, |i, j| out.push((i, j)))
    }

    fn gb(a: &[Point], b: &[Point], eps: f64, out: &mut Vec<(usize, usize)>) -> KernelStats {
        grid_bucket(a, b, eps, id, id, |i, j| out.push((i, j)))
    }

    #[test]
    fn kernels_agree_on_random_input() {
        for seed in 0..5 {
            let a = random_points(300, seed, 10.0);
            let b = random_points(300, seed + 100, 10.0);
            let (p1, s1) = collect_pairs(nl, &a, &b, 0.7);
            let (p2, s2) = collect_pairs(ps, &a, &b, 0.7);
            let (p3, s3) = collect_pairs(gb, &a, &b, 0.7);
            assert_eq!(p1, p2, "seed {seed}");
            assert_eq!(p1, p3, "seed {seed}");
            assert_eq!(s1.results, s2.results);
            assert_eq!(s1.results, s3.results);
            // The two prefiltering kernels share candidate semantics.
            assert_eq!(s2.candidates, s3.candidates, "seed {seed}");
            assert!(!p1.is_empty(), "test should exercise matches");
        }
    }

    #[test]
    fn plane_sweep_prunes_candidates() {
        let a = random_points(500, 1, 50.0);
        let b = random_points(500, 2, 50.0);
        let (_, s_nl) = collect_pairs(nl, &a, &b, 1.0);
        let (_, s_ps) = collect_pairs(ps, &a, &b, 1.0);
        assert_eq!(s_nl.candidates, 500 * 500);
        assert!(
            s_ps.candidates < s_nl.candidates / 5,
            "sweep should prune: {} vs {}",
            s_ps.candidates,
            s_nl.candidates
        );
        assert_eq!(s_nl.results, s_ps.results);
    }

    #[test]
    fn empty_inputs() {
        let a: Vec<Point> = Vec::new();
        let b = random_points(10, 3, 5.0);
        let (p, s) = collect_pairs(nl, &a, &b, 1.0);
        assert!(p.is_empty());
        assert_eq!(s, KernelStats::default());
        let (p, _) = collect_pairs(ps, &a, &b, 1.0);
        assert!(p.is_empty());
        let (p, _) = collect_pairs(ps, &b, &a, 1.0);
        assert!(p.is_empty());
        let (p, _) = collect_pairs(gb, &a, &b, 1.0);
        assert!(p.is_empty());
        let (p, _) = collect_pairs(gb, &b, &a, 1.0);
        assert!(p.is_empty());
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let a = vec![Point::new(0.0, 0.0)];
        let b = vec![Point::new(3.0, 4.0)];
        let (p, _) = collect_pairs(nl, &a, &b, 5.0);
        assert_eq!(p, vec![(0, 0)]);
        let (p, _) = collect_pairs(ps, &a, &b, 5.0);
        assert_eq!(p, vec![(0, 0)]);
        let (p, _) = collect_pairs(gb, &a, &b, 5.0);
        assert_eq!(p, vec![(0, 0)]);
    }

    #[test]
    fn stats_merge_adds() {
        let mut s = KernelStats {
            candidates: 5,
            results: 2,
        };
        s.merge(&KernelStats {
            candidates: 1,
            results: 1,
        });
        assert_eq!(
            s,
            KernelStats {
                candidates: 6,
                results: 3
            }
        );
    }

    #[test]
    fn duplicate_coordinates_produce_all_pairs() {
        let a = vec![Point::new(1.0, 1.0); 4];
        let b = vec![Point::new(1.0, 1.0); 3];
        let (p1, _) = collect_pairs(nl, &a, &b, 0.5);
        let (p2, _) = collect_pairs(ps, &a, &b, 0.5);
        let (p3, _) = collect_pairs(gb, &a, &b, 0.5);
        assert_eq!(p1.len(), 12);
        assert_eq!(p1, p2);
        assert_eq!(p1, p3);
    }

    #[test]
    fn local_join_matches_fixed_kernels_for_every_request() {
        let model = KernelCostModel::default();
        let a = random_points(250, 11, 8.0);
        let b = random_points(250, 12, 8.0);
        let eps = 0.5;
        let (expected, _) = collect_pairs(nl, &a, &b, eps);
        for requested in [
            LocalKernel::NestedLoop,
            LocalKernel::PlaneSweep,
            LocalKernel::GridBucket,
            LocalKernel::Auto,
        ] {
            let mut pairs = Vec::new();
            let out = local_join(requested, &model, eps, false, &a, &b, id, id, |i, j| {
                pairs.push((i, j))
            });
            pairs.sort_unstable();
            assert_eq!(pairs, expected, "{requested:?}");
            assert_eq!(out.stats.results as usize, expected.len());
            assert!(out.stats.candidates >= out.stats.results);
        }
    }

    #[test]
    fn local_join_respects_presorted_inputs() {
        let model = KernelCostModel::default();
        let mut a = random_points(200, 21, 6.0);
        let mut b = random_points(200, 22, 6.0);
        let eps = 0.4;
        let (expected, s_ps) = collect_pairs(ps, &a, &b, eps);
        a.sort_unstable_by(|p, q| p.x.total_cmp(&q.x));
        b.sort_unstable_by(|p, q| p.x.total_cmp(&q.x));
        let out = local_join(
            LocalKernel::PlaneSweep,
            &model,
            eps,
            true,
            &a,
            &b,
            id,
            id,
            |_, _| {},
        );
        let _ = expected;
        assert_eq!(out.stats.results, s_ps.results);
        assert_eq!(out.stats.candidates, s_ps.candidates);
    }

    #[test]
    fn auto_picks_nested_loop_only_where_counts_cannot_inflate() {
        let model = KernelCostModel::default();
        // Wide sparse group: Auto must use a prefiltering kernel, so its
        // candidate count equals the sweep's, not r·s.
        let a = random_points(120, 31, 40.0);
        let b = random_points(120, 32, 40.0);
        let eps = 0.8;
        let (_, s_ps) = collect_pairs(ps, &a, &b, eps);
        let out = local_join(
            LocalKernel::Auto,
            &model,
            eps,
            false,
            &a,
            &b,
            id,
            id,
            |_, _| {},
        );
        assert_ne!(out.kind, KernelKind::NestedLoop);
        assert_eq!(out.stats.candidates, s_ps.candidates);
        // Tight group inside eps x eps: nested loop, and the counts agree
        // with the sweep by construction (every pair passes the window).
        let a = random_points(40, 33, 0.3);
        let b = random_points(40, 34, 0.3);
        let eps = 0.5;
        let (_, s_ps) = collect_pairs(ps, &a, &b, eps);
        let out = local_join(
            LocalKernel::Auto,
            &model,
            eps,
            false,
            &a,
            &b,
            id,
            id,
            |_, _| {},
        );
        assert_eq!(out.kind, KernelKind::NestedLoop);
        assert_eq!(out.stats.candidates, s_ps.candidates);
    }

    #[test]
    fn self_join_kernels_agree() {
        let pts = random_points(300, 41, 9.0);
        let eps = 0.6;
        let model = KernelCostModel::default();
        let mut expected = Vec::new();
        let s_nl = self_nested_loop(&extract(&pts, id), eps, |i, j| {
            expected.push((i.min(j), i.max(j)))
        });
        expected.sort_unstable();
        assert!(!expected.is_empty());
        let mut ps_candidates = None;
        for requested in [
            LocalKernel::NestedLoop,
            LocalKernel::PlaneSweep,
            LocalKernel::GridBucket,
            LocalKernel::Auto,
        ] {
            let mut pairs = Vec::new();
            let out = local_self_join(requested, &model, eps, &pts, id, |i, j| {
                pairs.push((i.min(j), i.max(j)))
            });
            pairs.sort_unstable();
            assert_eq!(pairs, expected, "{requested:?}");
            assert_eq!(out.stats.results, s_nl.results);
            match out.kind {
                KernelKind::NestedLoop => assert_eq!(out.stats.candidates, s_nl.candidates),
                _ => {
                    let c = *ps_candidates.get_or_insert(out.stats.candidates);
                    assert_eq!(out.stats.candidates, c, "{requested:?}");
                }
            }
        }
    }

    #[test]
    fn rect_kernels_agree_and_sweep_prunes() {
        let mut rng = StdRng::seed_from_u64(51);
        let rects: Vec<Rect> = (0..150)
            .map(|_| {
                let x = rng.gen_range(0.0..30.0);
                let y = rng.gen_range(0.0..30.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.1..1.5),
                    y + rng.gen_range(0.1..1.5),
                )
            })
            .collect();
        let others: Vec<Rect> = (0..150)
            .map(|_| {
                let x = rng.gen_range(0.0..30.0);
                let y = rng.gen_range(0.0..30.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.1..1.5),
                    y + rng.gen_range(0.1..1.5),
                )
            })
            .collect();
        let model = KernelCostModel::default();
        let eps = 0.5;
        let run = |requested: LocalKernel| {
            let mut hits = Vec::new();
            let out = local_join_rects(
                requested,
                &model,
                eps,
                &rects,
                &others,
                |r| r.expand(eps),
                |r| *r,
                |i, j| {
                    let touch = rects[i].expand(eps).intersects(&others[j]);
                    if touch {
                        hits.push((i, j));
                    }
                    touch
                },
            );
            hits.sort_unstable();
            (hits, out)
        };
        let (h_nl, o_nl) = run(LocalKernel::NestedLoop);
        let (h_ps, o_ps) = run(LocalKernel::PlaneSweep);
        let (h_auto, o_auto) = run(LocalKernel::Auto);
        assert_eq!(h_nl, h_ps);
        assert_eq!(h_nl, h_auto);
        assert!(!h_nl.is_empty());
        assert_eq!(o_nl.stats.candidates, 150 * 150);
        assert!(o_ps.stats.candidates < o_nl.stats.candidates);
        assert_eq!(o_nl.stats.results, o_ps.stats.results);
        assert_ne!(o_auto.kind, KernelKind::NestedLoop);
    }

    fn soa_of(pts: &[Point]) -> (Vec<f64>, Vec<f64>) {
        let mut sorted = pts.to_vec();
        sorted.sort_unstable_by(|p, q| p.x.total_cmp(&q.x));
        (
            sorted.iter().map(|p| p.x).collect(),
            sorted.iter().map(|p| p.y).collect(),
        )
    }

    #[test]
    fn view_kernels_match_tuple_kernels() {
        for seed in 0..4 {
            let a = random_points(250, 60 + seed, 9.0);
            let b = random_points(250, 160 + seed, 9.0);
            let eps = 0.6;
            let (ax, ay) = soa_of(&a);
            let (bx, by) = soa_of(&b);
            let va = PointsView::new(&ax, &ay);
            let vb = PointsView::new(&bx, &by);
            // Result coordinates (layout-independent identity), sorted.
            let gather = |pairs: &[(usize, usize)],
                          pa: &dyn Fn(usize) -> Point,
                          pb: &dyn Fn(usize) -> Point| {
                let mut got: Vec<_> = pairs
                    .iter()
                    .map(|&(i, j)| {
                        let (p, q) = (pa(i), pb(j));
                        (p.x.to_bits(), p.y.to_bits(), q.x.to_bits(), q.y.to_bits())
                    })
                    .collect();
                got.sort_unstable();
                got
            };
            let tup_a = |i: usize| a[i];
            let tup_b = |j: usize| b[j];
            let view_a = |i: usize| Point::new(ax[i], ay[i]);
            let view_b = |j: usize| Point::new(bx[j], by[j]);

            let (pairs_nl, s_nl) = collect_pairs(nl, &a, &b, eps);
            let mut out = Vec::new();
            let sv = nested_loop_view(va, vb, eps, |i, j| out.push((i, j)));
            assert_eq!(sv, s_nl, "NL stats, seed {seed}");
            assert_eq!(
                gather(&out, &view_a, &view_b),
                gather(&pairs_nl, &tup_a, &tup_b)
            );

            let (pairs_ps, s_ps) = collect_pairs(ps, &a, &b, eps);
            let mut out = Vec::new();
            let sv = sweep_view(va, vb, eps, |i, j| out.push((i, j)));
            assert_eq!(sv, s_ps, "PS stats, seed {seed}");
            assert_eq!(
                gather(&out, &view_a, &view_b),
                gather(&pairs_ps, &tup_a, &tup_b)
            );

            let (pairs_gb, s_gb) = collect_pairs(gb, &a, &b, eps);
            let mut out = Vec::new();
            let sv = bucket_probe_view(va, vb, eps, |i, j| out.push((i, j)));
            assert_eq!(sv, s_gb, "GB stats, seed {seed}");
            assert_eq!(
                gather(&out, &view_a, &view_b),
                gather(&pairs_gb, &tup_a, &tup_b)
            );
        }
    }

    #[test]
    fn local_join_view_resolves_like_local_join() {
        let model = KernelCostModel::default();
        for (n, extent, eps) in [(40, 0.3, 0.5), (250, 9.0, 0.6), (120, 40.0, 0.8)] {
            let a = random_points(n, 71, extent);
            let b = random_points(n, 72, extent);
            let (ax, ay) = soa_of(&a);
            let (bx, by) = soa_of(&b);
            for requested in [
                LocalKernel::NestedLoop,
                LocalKernel::PlaneSweep,
                LocalKernel::GridBucket,
                LocalKernel::Auto,
            ] {
                let tuple = local_join(requested, &model, eps, false, &a, &b, id, id, |_, _| {});
                let view = local_join_view(
                    requested,
                    &model,
                    eps,
                    PointsView::new(&ax, &ay),
                    PointsView::new(&bx, &by),
                    |_, _| {},
                );
                assert_eq!(view.kind, tuple.kind, "{requested:?} n={n}");
                assert_eq!(view.stats, tuple.stats, "{requested:?} n={n}");
            }
        }
    }

    #[test]
    fn view_kernels_handle_empty_sides() {
        let (xs, ys) = (vec![1.0, 2.0], vec![0.0, 0.0]);
        let v = PointsView::new(&xs, &ys);
        let e = PointsView::new(&[], &[]);
        for (sa, sb) in [(e, v), (v, e), (e, e)] {
            assert_eq!(
                nested_loop_view(sa, sb, 1.0, |_, _| {}),
                KernelStats::default()
            );
            assert_eq!(sweep_view(sa, sb, 1.0, |_, _| {}), KernelStats::default());
            assert_eq!(
                bucket_probe_view(sa, sb, 1.0, |_, _| {}),
                KernelStats::default()
            );
        }
    }

    #[test]
    fn calibration_is_memoized_and_sane() {
        let m1 = calibrate_cost_model();
        let m2 = calibrate_cost_model();
        assert_eq!(m1, m2, "process-wide calibration must be stable");
        for c in [
            m1.nl_pair,
            m1.ps_point,
            m1.ps_pair,
            m1.bucket_point,
            m1.bucket_pair,
        ] {
            assert!(c.is_finite() && c > 0.0);
        }
    }
}
