use asj_geom::{Point, Rect};

/// A sample-driven quadtree space partitioner, as used by Apache Sedona's
/// `QUADTREE` grid type.
///
/// The tree is built over a sample of one input: a region splits into four
/// quadrants while it holds more than `capacity` sample points and the
/// maximum depth is not reached. The **leaves** become the join partitions.
/// Points are then routed with [`QuadTreePartitioner::leaf_of`] (unique
/// assignment) or [`QuadTreePartitioner::leaves_within`] (all leaves whose
/// region intersects an ε-disk — the replicated side of the distance join).
#[derive(Debug, Clone)]
pub struct QuadTreePartitioner {
    nodes: Vec<QNode>,
    /// Node ids of the leaves, in partition-id order.
    leaves: Vec<usize>,
    bbox: Rect,
}

#[derive(Debug, Clone)]
struct QNode {
    rect: Rect,
    /// `None` for leaves; child ids in [SW, SE, NW, NE] order otherwise.
    children: Option<[usize; 4]>,
    /// Partition id when this node is a leaf.
    leaf_id: usize,
}

impl QuadTreePartitioner {
    /// Builds the partitioner from `sample` points.
    ///
    /// # Panics
    /// Panics if `capacity == 0`, `bbox` is empty, or `max_depth == 0`.
    pub fn build(bbox: Rect, sample: &[Point], capacity: usize, max_depth: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(max_depth > 0, "max_depth must be positive");
        assert!(!bbox.is_empty(), "bbox must be non-empty");
        let mut nodes = vec![QNode {
            rect: bbox,
            children: None,
            leaf_id: usize::MAX,
        }];
        let mut stack: Vec<(usize, Vec<Point>, usize)> = vec![(0, sample.to_vec(), 1)];
        while let Some((id, pts, depth)) = stack.pop() {
            if pts.len() <= capacity || depth >= max_depth {
                continue; // stays a leaf
            }
            let r = nodes[id].rect;
            let c = r.center();
            let quads = [
                Rect::new(r.min_x, r.min_y, c.x, c.y),
                Rect::new(c.x, r.min_y, r.max_x, c.y),
                Rect::new(r.min_x, c.y, c.x, r.max_y),
                Rect::new(c.x, c.y, r.max_x, r.max_y),
            ];
            let mut buckets: [Vec<Point>; 4] = Default::default();
            for p in pts {
                let east = p.x >= c.x;
                let north = p.y >= c.y;
                buckets[usize::from(east) + 2 * usize::from(north)].push(p);
            }
            let mut children = [0usize; 4];
            for i in 0..4 {
                nodes.push(QNode {
                    rect: quads[i],
                    children: None,
                    leaf_id: usize::MAX,
                });
                children[i] = nodes.len() - 1;
            }
            nodes[id].children = Some(children);
            for (i, bucket) in buckets.into_iter().enumerate() {
                stack.push((children[i], bucket, depth + 1));
            }
        }
        // Number the leaves.
        let mut leaves = Vec::new();
        for (id, node) in nodes.iter_mut().enumerate() {
            if node.children.is_none() {
                node.leaf_id = leaves.len();
                leaves.push(id);
            }
        }
        QuadTreePartitioner {
            nodes,
            leaves,
            bbox,
        }
    }

    /// Number of leaf partitions.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Region of a leaf partition.
    pub fn leaf_rect(&self, leaf: usize) -> Rect {
        self.nodes[self.leaves[leaf]].rect
    }

    /// The unique leaf containing `p` (points outside the bounding box are
    /// clamped onto it, so every point routes somewhere).
    pub fn leaf_of(&self, p: Point) -> usize {
        let p = Point::new(
            p.x.clamp(self.bbox.min_x, self.bbox.max_x),
            p.y.clamp(self.bbox.min_y, self.bbox.max_y),
        );
        let mut id = 0usize;
        while let Some(children) = self.nodes[id].children {
            let c = self.nodes[id].rect.center();
            let east = p.x >= c.x;
            let north = p.y >= c.y;
            id = children[usize::from(east) + 2 * usize::from(north)];
        }
        self.nodes[id].leaf_id
    }

    /// Serialized size of the partitioner when broadcast to every node: one
    /// rectangle (four `f64`), four child ids and a leaf id per node, plus
    /// the leaf table and the global bbox.
    pub fn broadcast_bytes(&self) -> u64 {
        (self.nodes.len() * (4 * 8 + 4 * 8 + 8) + self.leaves.len() * 8 + 4 * 8) as u64
    }

    /// Appends every leaf whose region is within distance `eps` of `p`
    /// (i.e. intersects the ε-disk) to `out` — the multi-assignment used for
    /// the replicated side.
    pub fn leaves_within(&self, p: Point, eps: f64, out: &mut Vec<usize>) {
        let e2 = eps * eps;
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.rect.mindist2(p) > e2 {
                continue;
            }
            match node.children {
                Some(children) => stack.extend(children),
                None => out.push(node.leaf_id),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bbox() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    fn clustered_sample(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))
                } else {
                    // Dense cluster near (20, 30).
                    Point::new(
                        20.0 + rng.gen_range(-5.0..5.0),
                        30.0 + rng.gen_range(-5.0..5.0),
                    )
                }
            })
            .collect()
    }

    #[test]
    fn small_sample_single_leaf() {
        let qt = QuadTreePartitioner::build(bbox(), &[Point::new(1.0, 1.0)], 10, 8);
        assert_eq!(qt.num_leaves(), 1);
        assert_eq!(qt.leaf_of(Point::new(99.0, 99.0)), 0);
    }

    #[test]
    fn splits_follow_density() {
        let sample = clustered_sample(3000, 17);
        let qt = QuadTreePartitioner::build(bbox(), &sample, 100, 10);
        assert!(qt.num_leaves() > 4);
        // The dense cluster region must be partitioned finer than the sparse
        // far corner.
        let dense = qt.leaf_rect(qt.leaf_of(Point::new(20.0, 30.0)));
        let sparse = qt.leaf_rect(qt.leaf_of(Point::new(90.0, 90.0)));
        assert!(dense.area() < sparse.area());
    }

    #[test]
    fn leaf_of_is_unique_and_consistent() {
        let sample = clustered_sample(2000, 3);
        let qt = QuadTreePartitioner::build(bbox(), &sample, 50, 10);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            let leaf = qt.leaf_of(p);
            assert!(leaf < qt.num_leaves());
            assert!(qt.leaf_rect(leaf).contains(p));
        }
    }

    #[test]
    fn leaves_within_superset_of_leaf_of() {
        let sample = clustered_sample(2000, 29);
        let qt = QuadTreePartitioner::build(bbox(), &sample, 50, 10);
        let mut rng = StdRng::seed_from_u64(31);
        let mut out = Vec::new();
        for _ in 0..300 {
            let p = Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
            out.clear();
            qt.leaves_within(p, 2.0, &mut out);
            assert!(out.contains(&qt.leaf_of(p)));
            // Every reported leaf is genuinely within eps; none reported twice.
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len());
            for &l in &out {
                assert!(qt.leaf_rect(l).within_eps_of(p, 2.0));
            }
        }
    }

    #[test]
    fn leaves_tile_the_bbox() {
        let sample = clustered_sample(1000, 41);
        let qt = QuadTreePartitioner::build(bbox(), &sample, 30, 6);
        let total: f64 = (0..qt.num_leaves()).map(|l| qt.leaf_rect(l).area()).sum();
        assert!((total - bbox().area()).abs() < 1e-6);
    }

    #[test]
    fn outside_points_are_clamped() {
        let qt = QuadTreePartitioner::build(bbox(), &clustered_sample(500, 5), 30, 6);
        let leaf = qt.leaf_of(Point::new(-10.0, 200.0));
        assert!(leaf < qt.num_leaves());
    }

    #[test]
    fn max_depth_bounds_leaf_count() {
        // All sample points identical: without a depth bound this would
        // recurse forever.
        let sample = vec![Point::new(50.0, 50.0); 1000];
        let qt = QuadTreePartitioner::build(bbox(), &sample, 10, 5);
        assert!(qt.num_leaves() <= 4usize.pow(4) + 3 * 4);
    }
}
