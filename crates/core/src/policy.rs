use crate::{Dir8, GridSample, SetLabel};
use asj_grid::{CellCoord, Grid};

/// How agreement types are chosen when instantiating the graph of agreements
/// (§4.3), plus the two degenerate instantiations that recover PBSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgreementPolicy {
    /// *Least points in boundaries*: the agreement type of a pair of adjacent
    /// cells is the dataset with the fewest sampled replication candidates
    /// between the two cells.
    Lpib,
    /// *Greatest difference*: the cell of the pair with the greatest
    /// `|#R − #S|` decides; the agreement type is the dataset with the fewest
    /// sampled points inside that cell.
    Diff,
    /// Every agreement is `α_R` — universal replication of R, i.e. the PBSM
    /// adaptation UNI(R). With uniform types no triangle mixes agreement
    /// types, so Algorithm 1 marks nothing and the assignment degenerates to
    /// classic PBSM replication.
    UniformR,
    /// Every agreement is `α_S` (UNI(S)).
    UniformS,
}

impl AgreementPolicy {
    /// The two adaptive variants evaluated in the paper.
    pub const ADAPTIVE: [AgreementPolicy; 2] = [AgreementPolicy::Lpib, AgreementPolicy::Diff];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AgreementPolicy::Lpib => "LPiB",
            AgreementPolicy::Diff => "DIFF",
            AgreementPolicy::UniformR => "UNI(R)",
            AgreementPolicy::UniformS => "UNI(S)",
        }
    }

    /// Decides the agreement type for the adjacent cell pair `(a, b)`.
    ///
    /// The decision is symmetric in `(a, b)`. Ties are broken
    /// deterministically (toward the pair's total-count minimum and finally
    /// toward `R`) so that independently built graphs agree.
    pub fn agreement_type(
        self,
        grid: &Grid,
        sample: &GridSample,
        a: CellCoord,
        b: CellCoord,
    ) -> SetLabel {
        match self {
            AgreementPolicy::UniformR => SetLabel::R,
            AgreementPolicy::UniformS => SetLabel::S,
            AgreementPolicy::Lpib => lpib(grid, sample, a, b),
            AgreementPolicy::Diff => diff(grid, sample, a, b),
        }
    }
}

/// Replication candidates of `label` crossing the `(a, b)` border, from both
/// sides.
fn border_candidates(
    grid: &Grid,
    sample: &GridSample,
    a: CellCoord,
    b: CellCoord,
    label: SetLabel,
) -> u64 {
    let ai = grid.cell_index(a);
    let bi = grid.cell_index(b);
    sample.border_count(ai, Dir8::between(a, b), label)
        + sample.border_count(bi, Dir8::between(b, a), label)
}

fn lpib(grid: &Grid, sample: &GridSample, a: CellCoord, b: CellCoord) -> SetLabel {
    let r = border_candidates(grid, sample, a, b, SetLabel::R);
    let s = border_candidates(grid, sample, a, b, SetLabel::S);
    match r.cmp(&s) {
        std::cmp::Ordering::Less => SetLabel::R,
        std::cmp::Ordering::Greater => SetLabel::S,
        std::cmp::Ordering::Equal => {
            // Tie: fall back to the dataset with fewer points in the two
            // cells combined, then to R.
            let ai = grid.cell_index(a);
            let bi = grid.cell_index(b);
            let tr = sample.total(ai, SetLabel::R) + sample.total(bi, SetLabel::R);
            let ts = sample.total(ai, SetLabel::S) + sample.total(bi, SetLabel::S);
            if ts < tr {
                SetLabel::S
            } else {
                SetLabel::R
            }
        }
    }
}

fn diff(grid: &Grid, sample: &GridSample, a: CellCoord, b: CellCoord) -> SetLabel {
    let spread = |c: CellCoord| {
        let ci = grid.cell_index(c);
        let r = sample.total(ci, SetLabel::R);
        let s = sample.total(ci, SetLabel::S);
        (r.abs_diff(s), r, s)
    };
    let (da, ra, sa) = spread(a);
    let (db, rb, sb) = spread(b);
    // The cell with the greatest |#R − #S| decides; ties go to the cell with
    // the smaller index so both call orders agree.
    let (r, s) = if da > db || (da == db && grid.cell_index(a) <= grid.cell_index(b)) {
        (ra, sa)
    } else {
        (rb, sb)
    };
    if s < r {
        SetLabel::S
    } else {
        SetLabel::R
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::{Point, Rect};
    use asj_grid::GridSpec;

    fn grid() -> Grid {
        Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0))
    }

    /// Drops `n` points of `label` at `p`.
    fn fill(sample: &mut GridSample, grid: &Grid, label: SetLabel, p: Point, n: usize) {
        for _ in 0..n {
            sample.add(grid, label, p);
        }
    }

    #[test]
    fn uniform_policies_ignore_sample() {
        let g = grid();
        let s = GridSample::new(&g);
        let a = CellCoord { x: 0, y: 0 };
        let b = CellCoord { x: 1, y: 0 };
        assert_eq!(
            AgreementPolicy::UniformR.agreement_type(&g, &s, a, b),
            SetLabel::R
        );
        assert_eq!(
            AgreementPolicy::UniformS.agreement_type(&g, &s, a, b),
            SetLabel::S
        );
    }

    #[test]
    fn lpib_picks_fewest_border_candidates() {
        let g = grid();
        let mut s = GridSample::new(&g);
        // Border area between cells (0,0) and (1,0): vertical line x = 2.5.
        // 3 R candidates on the west side, 1 S candidate on the east side.
        fill(&mut s, &g, SetLabel::R, Point::new(2.4, 1.2), 3);
        fill(&mut s, &g, SetLabel::S, Point::new(2.6, 1.2), 1);
        // Plenty of interior R points that must not influence LPiB.
        fill(&mut s, &g, SetLabel::R, Point::new(1.2, 1.2), 50);
        let a = CellCoord { x: 0, y: 0 };
        let b = CellCoord { x: 1, y: 0 };
        assert_eq!(
            AgreementPolicy::Lpib.agreement_type(&g, &s, a, b),
            SetLabel::S
        );
        assert_eq!(
            AgreementPolicy::Lpib.agreement_type(&g, &s, b, a),
            SetLabel::S
        );
    }

    #[test]
    fn lpib_tie_breaks_on_cell_totals() {
        let g = grid();
        let mut s = GridSample::new(&g);
        // Equal border candidates (1 each), but S has fewer points overall.
        fill(&mut s, &g, SetLabel::R, Point::new(2.4, 1.2), 1);
        fill(&mut s, &g, SetLabel::S, Point::new(2.6, 1.2), 1);
        fill(&mut s, &g, SetLabel::R, Point::new(1.2, 1.2), 10);
        let a = CellCoord { x: 0, y: 0 };
        let b = CellCoord { x: 1, y: 0 };
        assert_eq!(
            AgreementPolicy::Lpib.agreement_type(&g, &s, a, b),
            SetLabel::S
        );
    }

    #[test]
    fn diff_uses_most_imbalanced_cell() {
        let g = grid();
        let mut s = GridSample::new(&g);
        // Cell (0,0): 1 R, 3 S ⇒ diff 2, fewer are R.
        fill(&mut s, &g, SetLabel::R, Point::new(1.2, 1.2), 1);
        fill(&mut s, &g, SetLabel::S, Point::new(1.2, 1.2), 3);
        // Cell (1,0): 2 R, 2 S ⇒ diff 0.
        fill(&mut s, &g, SetLabel::R, Point::new(3.7, 1.2), 2);
        fill(&mut s, &g, SetLabel::S, Point::new(3.7, 1.2), 2);
        let a = CellCoord { x: 0, y: 0 };
        let b = CellCoord { x: 1, y: 0 };
        // Example 4.3 of the paper: the imbalanced cell decides and picks the
        // dataset with the fewest points there (R).
        assert_eq!(
            AgreementPolicy::Diff.agreement_type(&g, &s, a, b),
            SetLabel::R
        );
        assert_eq!(
            AgreementPolicy::Diff.agreement_type(&g, &s, b, a),
            SetLabel::R
        );
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(AgreementPolicy::Lpib.name(), "LPiB");
        assert_eq!(AgreementPolicy::Diff.name(), "DIFF");
        assert_eq!(AgreementPolicy::UniformR.name(), "UNI(R)");
        assert_eq!(AgreementPolicy::UniformS.name(), "UNI(S)");
    }
}
