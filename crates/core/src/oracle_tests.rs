//! Whole-pipeline validation of the adaptive-replication assignment against a
//! brute-force oracle.
//!
//! For any instantiation of the graph of agreements processed by Algorithm 1,
//! the assignment produced by Algorithms 2–4 must be
//!
//! * **correct** (Definition 3.2): every pair `(r, s)` with `d(r, s) ≤ ε` is
//!   co-assigned to at least one cell, and
//! * **duplicate-free** (Definition 3.3): to at most one cell,
//!
//! i.e. `|cells(r) ∩ cells(s)| = 1` for every result pair. These tests check
//! that invariant exhaustively for every one of the 2⁶ agreement-type
//! instantiations of a single quartet, and on randomized multi-quartet grids
//! with random agreement types, random edge weights and random point clouds.

use crate::{AgreementGraph, AgreementPolicy, GridSample, SetLabel};
use asj_geom::{Point, Rect};
use asj_grid::{CellCoord, Grid, GridSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All unordered adjacent cell pairs of a grid, in a stable order.
fn adjacent_pairs(grid: &Grid) -> Vec<(CellCoord, CellCoord)> {
    let mut pairs = Vec::new();
    for y in 0..grid.ny() {
        for x in 0..grid.nx() {
            let a = CellCoord { x, y };
            for (dx, dy) in [(1i64, 0i64), (0, 1), (1, 1), (-1, 1)] {
                let bx = x as i64 + dx;
                let by = y as i64 + dy;
                if bx < 0 || by < 0 || bx >= grid.nx() as i64 || by >= grid.ny() as i64 {
                    continue;
                }
                pairs.push((
                    a,
                    CellCoord {
                        x: bx as u32,
                        y: by as u32,
                    },
                ));
            }
        }
    }
    pairs
}

fn graph_from_bits(grid: &Grid, sample: &GridSample, bits: u64) -> AgreementGraph {
    let pairs = adjacent_pairs(grid);
    let mut graph = AgreementGraph::from_pair_types(grid, |a, b| {
        let key = if (a.y, a.x) <= (b.y, b.x) {
            (a, b)
        } else {
            (b, a)
        };
        let idx = pairs
            .iter()
            .position(|p| *p == key)
            .expect("pair must be adjacent");
        if bits >> idx & 1 == 0 {
            SetLabel::R
        } else {
            SetLabel::S
        }
    });
    crate::build_duplicate_free(&mut graph, sample);
    graph
}

/// Checks correctness and duplicate-freeness of `graph` for the given point
/// sets; panics with a descriptive message on the first violation.
fn check_assignment(graph: &AgreementGraph, r_pts: &[Point], s_pts: &[Point], ctx: &str) {
    let assign_all = |label: SetLabel, pts: &[Point]| -> Vec<Vec<CellCoord>> {
        let mut out = Vec::with_capacity(4);
        pts.iter()
            .map(|&p| {
                graph.assign(p, label, &mut out);
                out.clone()
            })
            .collect()
    };
    let r_cells = assign_all(SetLabel::R, r_pts);
    let s_cells = assign_all(SetLabel::S, s_pts);
    let eps2 = graph.grid().eps() * graph.grid().eps();
    for (ri, r) in r_pts.iter().enumerate() {
        for (si, s) in s_pts.iter().enumerate() {
            if r.dist2(*s) > eps2 {
                continue;
            }
            let common = r_cells[ri]
                .iter()
                .filter(|c| s_cells[si].contains(c))
                .count();
            assert_eq!(
                common, 1,
                "{ctx}: pair r={r:?} (cells {:?}) s={s:?} (cells {:?}) \
                 co-assigned to {common} cells (want exactly 1)",
                r_cells[ri], s_cells[si]
            );
        }
    }
}

/// A lattice of points covering the quartet around corner (2.5, 2.5) of the
/// 2×2 grid, concentrated where the interesting areas are.
fn lattice(offset_x: f64, offset_y: f64) -> Vec<Point> {
    let mut pts = Vec::new();
    let mut x = 0.05 + offset_x;
    while x < 5.0 {
        let mut y = 0.05 + offset_y;
        while y < 5.0 {
            pts.push(Point::new(x, y));
            y += 1.0 / 3.0;
        }
        x += 1.0 / 3.0;
    }
    pts
}

fn quartet_grid() -> Grid {
    Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 5.0, 5.0), 1.0))
}

/// Exhaustive sweep over all 2⁶ agreement instantiations of a single quartet
/// with zero edge weights.
#[test]
fn exhaustive_single_quartet_all_type_assignments() {
    let grid = quartet_grid();
    let sample = GridSample::new(&grid);
    let r_pts = lattice(0.0, 0.0);
    let s_pts = lattice(0.151, 0.087);
    assert_eq!(adjacent_pairs(&grid).len(), 6);
    for bits in 0..64u64 {
        let graph = graph_from_bits(&grid, &sample, bits);
        check_assignment(&graph, &r_pts, &s_pts, &format!("quartet bits={bits:#08b}"));
    }
}

/// Exhaustive type sweep again, but with randomized edge weights so that
/// Algorithm 1 explores different marking orders and triangle tie-breaks.
#[test]
fn exhaustive_single_quartet_random_weights() {
    let grid = quartet_grid();
    let r_pts = lattice(0.0, 0.0);
    let s_pts = lattice(0.151, 0.087);
    let mut rng = StdRng::seed_from_u64(0xDECAF);
    for round in 0..4 {
        // Random sample points induce random border counts and totals.
        let mut sample = GridSample::new(&grid);
        for _ in 0..200 {
            let p = Point::new(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0));
            let label = if rng.gen_bool(0.5) {
                SetLabel::R
            } else {
                SetLabel::S
            };
            sample.add(&grid, label, p);
        }
        for bits in 0..64u64 {
            let graph = graph_from_bits(&grid, &sample, bits);
            check_assignment(
                &graph,
                &r_pts,
                &s_pts,
                &format!("quartet round={round} bits={bits:#08b}"),
            );
        }
    }
}

/// Randomized multi-quartet grids: random pair types, random weights, random
/// clustered points. Quartet interactions (edge locking across triangles,
/// side pairs shared by two subgraphs) only arise here.
#[test]
fn randomized_multi_quartet_grids() {
    let mut rng = StdRng::seed_from_u64(7_654_321);
    for round in 0..30 {
        // 3×3 .. 5×4 cells; keep the world small so border areas dominate.
        let nx = rng.gen_range(3..=5) as f64;
        let ny = rng.gen_range(3..=4) as f64;
        let side = rng.gen_range(2.05..3.0);
        let grid = Grid::new(GridSpec::new(
            Rect::new(0.0, 0.0, nx * side, ny * side),
            1.0,
        ));
        let mut sample = GridSample::new(&grid);
        for _ in 0..100 {
            let p = Point::new(
                rng.gen_range(0.0..grid.bbox().max_x),
                rng.gen_range(0.0..grid.bbox().max_y),
            );
            let label = if rng.gen_bool(0.5) {
                SetLabel::R
            } else {
                SetLabel::S
            };
            sample.add(&grid, label, p);
        }
        let pairs = adjacent_pairs(&grid);
        let types: Vec<SetLabel> = (0..pairs.len())
            .map(|_| {
                if rng.gen_bool(0.5) {
                    SetLabel::R
                } else {
                    SetLabel::S
                }
            })
            .collect();
        let mut graph = AgreementGraph::from_pair_types(&grid, |a, b| {
            let key = if (a.y, a.x) <= (b.y, b.x) {
                (a, b)
            } else {
                (b, a)
            };
            types[pairs.iter().position(|p| *p == key).unwrap()]
        });
        crate::build_duplicate_free(&mut graph, &sample);

        let gen_points = |rng: &mut StdRng, n: usize| -> Vec<Point> {
            (0..n)
                .map(|_| {
                    Point::new(
                        rng.gen_range(0.0..grid.bbox().max_x),
                        rng.gen_range(0.0..grid.bbox().max_y),
                    )
                })
                .collect()
        };
        let r_pts = gen_points(&mut rng, 150);
        let s_pts = gen_points(&mut rng, 150);
        check_assignment(
            &graph,
            &r_pts,
            &s_pts,
            &format!("multi-quartet round={round}"),
        );
    }
}

/// The policy-driven graphs (LPiB, DIFF) must also satisfy the invariant on
/// skewed inputs — this is the configuration the paper actually runs.
#[test]
fn policy_graphs_on_skewed_data() {
    let mut rng = StdRng::seed_from_u64(42);
    let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 13.0, 9.0), 1.0)); // 6×4 cells
                                                                              // Skew: R clusters bottom-left, S clusters top-right, overlapping band in
                                                                              // the middle.
    let cluster = |rng: &mut StdRng, cx: f64, cy: f64, spread: f64, n: usize| -> Vec<Point> {
        (0..n)
            .map(|_| {
                Point::new(
                    (cx + rng.gen_range(-spread..spread)).clamp(0.0, 13.0),
                    (cy + rng.gen_range(-spread..spread)).clamp(0.0, 9.0),
                )
            })
            .collect()
    };
    let mut r_pts = cluster(&mut rng, 3.0, 2.5, 3.0, 250);
    r_pts.extend(cluster(&mut rng, 6.5, 4.5, 2.0, 100));
    let mut s_pts = cluster(&mut rng, 10.0, 6.5, 3.0, 250);
    s_pts.extend(cluster(&mut rng, 6.5, 4.5, 2.0, 100));

    let sample = GridSample::from_points(
        &grid,
        r_pts.iter().step_by(3).copied(),
        s_pts.iter().step_by(3).copied(),
    );
    for policy in [
        AgreementPolicy::Lpib,
        AgreementPolicy::Diff,
        AgreementPolicy::UniformR,
        AgreementPolicy::UniformS,
    ] {
        let graph = AgreementGraph::build(&grid, &sample, policy);
        check_assignment(&graph, &r_pts, &s_pts, policy.name());
    }
}

/// Under a uniform policy the adaptive assignment must coincide exactly with
/// textbook PBSM replication (replicate every point of the chosen set to all
/// cells within ε; never replicate the other set).
#[test]
fn uniform_policy_equals_pbsm_replication() {
    let mut rng = StdRng::seed_from_u64(99);
    let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 11.0, 11.0), 1.0));
    let graph = AgreementGraph::build(&grid, &GridSample::new(&grid), AgreementPolicy::UniformR);
    let mut out = Vec::new();
    let mut expected = Vec::new();
    for _ in 0..2000 {
        let p = Point::new(rng.gen_range(0.0..11.0), rng.gen_range(0.0..11.0));
        graph.assign(p, SetLabel::R, &mut out);
        expected.clear();
        expected.push(grid.cell_of(p));
        grid.push_cells_within_eps(p, &mut expected);
        out.sort();
        expected.sort();
        assert_eq!(out, expected, "R assignment must equal PBSM for {p:?}");
        graph.assign(p, SetLabel::S, &mut out);
        assert_eq!(
            out,
            vec![grid.cell_of(p)],
            "S must never replicate under UNI(R)"
        );
    }
}

/// Adaptive replication never assigns a point to more than 4 cells and always
/// keeps the native cell first.
#[test]
fn assignment_shape_invariants() {
    let mut rng = StdRng::seed_from_u64(4242);
    let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 9.0, 9.0), 1.0));
    let pairs = adjacent_pairs(&grid);
    let types: Vec<SetLabel> = (0..pairs.len())
        .map(|_| {
            if rng.gen_bool(0.5) {
                SetLabel::R
            } else {
                SetLabel::S
            }
        })
        .collect();
    let mut graph = AgreementGraph::from_pair_types(&grid, |a, b| {
        let key = if (a.y, a.x) <= (b.y, b.x) {
            (a, b)
        } else {
            (b, a)
        };
        types[pairs.iter().position(|p| *p == key).unwrap()]
    });
    crate::build_duplicate_free(&mut graph, &GridSample::new(&grid));
    let mut out = Vec::new();
    for _ in 0..5000 {
        let p = Point::new(rng.gen_range(0.0..9.0), rng.gen_range(0.0..9.0));
        for label in SetLabel::BOTH {
            graph.assign(p, label, &mut out);
            assert!(!out.is_empty() && out.len() <= 4, "bad cell count: {out:?}");
            assert_eq!(out[0], grid.cell_of(p), "native cell must come first");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property test: arbitrary quartet instantiation (types and weights from
    /// the seed) with focused random point clouds near the reference point.
    #[test]
    fn prop_quartet_pairs_coassigned_exactly_once(
        bits in 0u64..64,
        seed in 0u64..1_000_000,
    ) {
        let grid = quartet_grid();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample = GridSample::new(&grid);
        for _ in 0..64 {
            let p = Point::new(rng.gen_range(1.0..4.0), rng.gen_range(1.0..4.0));
            let label = if rng.gen_bool(0.5) { SetLabel::R } else { SetLabel::S };
            sample.add(&grid, label, p);
        }
        let graph = graph_from_bits(&grid, &sample, bits);
        // Points concentrated around the reference point (2.5, 2.5) so most
        // pairs exercise the corner machinery.
        let gen = |rng: &mut StdRng, n: usize| -> Vec<Point> {
            (0..n)
                .map(|_| Point::new(rng.gen_range(1.0..4.0), rng.gen_range(1.0..4.0)))
                .collect()
        };
        let r_pts = gen(&mut rng, 60);
        let s_pts = gen(&mut rng, 60);
        check_assignment(&graph, &r_pts, &s_pts, &format!("prop bits={bits} seed={seed}"));
    }
}

/// The WeightOnly ablation order must still yield a correct, duplicate-free
/// assignment — the ordering affects replication volume, not safety.
#[test]
fn weight_only_order_is_still_correct() {
    let grid = quartet_grid();
    let r_pts = lattice(0.0, 0.0);
    let s_pts = lattice(0.151, 0.087);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut sample = GridSample::new(&grid);
    for _ in 0..128 {
        let p = Point::new(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0));
        let label = if rng.gen_bool(0.5) {
            SetLabel::R
        } else {
            SetLabel::S
        };
        sample.add(&grid, label, p);
    }
    let pairs = adjacent_pairs(&grid);
    for bits in 0..64u64 {
        let mut graph = AgreementGraph::from_pair_types(&grid, |a, b| {
            let key = if (a.y, a.x) <= (b.y, b.x) {
                (a, b)
            } else {
                (b, a)
            };
            let idx = pairs.iter().position(|p| *p == key).unwrap();
            if bits >> idx & 1 == 0 {
                SetLabel::R
            } else {
                SetLabel::S
            }
        });
        crate::build_duplicate_free_with_order(&mut graph, &sample, crate::EdgeOrder::WeightOnly);
        assert_eq!(graph.validate().unresolved_hazards, 0, "bits={bits:#08b}");
        check_assignment(
            &graph,
            &r_pts,
            &s_pts,
            &format!("weight-only bits={bits:#08b}"),
        );
    }
}

/// `AgreementGraph::validate` reports zero unresolved hazards after
/// Algorithm 1 on policy-built graphs, and detects hazards on unmarked mixed
/// graphs.
#[test]
fn validate_detects_and_clears_hazards() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 11.0, 9.0), 1.0));
    let mut sample = GridSample::new(&grid);
    for _ in 0..400 {
        let p = Point::new(rng.gen_range(0.0..11.0), rng.gen_range(0.0..9.0));
        let label = if rng.gen_bool(0.5) {
            SetLabel::R
        } else {
            SetLabel::S
        };
        sample.add(&grid, label, p);
    }
    // Unmarked graph with mixed types: hazards must exist (overwhelmingly
    // likely with this many quartets and random types).
    let unmarked = AgreementGraph::build_unmarked(&grid, &sample, AgreementPolicy::Lpib);
    let before = unmarked.validate();
    assert_eq!(before.marked_edges, 0);
    assert!(
        before.unresolved_hazards > 0,
        "expected hazards in the unmarked graph"
    );
    // After Algorithm 1: none.
    let marked = AgreementGraph::build(&grid, &sample, AgreementPolicy::Lpib);
    let after = marked.validate();
    assert_eq!(after.unresolved_hazards, 0);
    assert!(after.marked_edges > 0);
    assert!(after.locked_edges >= after.marked_edges);
    // Uniform graphs have nothing to resolve.
    let uni = AgreementGraph::build(&grid, &sample, AgreementPolicy::UniformR);
    assert_eq!(
        uni.validate(),
        crate::GraphValidation {
            unresolved_hazards: 0,
            marked_edges: 0,
            locked_edges: 0
        }
    );
}

/// The paper's diagonal-first order should not replicate more than the
/// naive weight-only order in aggregate (its purpose is avoiding the extra
/// supplementary-area replication of side-edge markings).
#[test]
fn diagonal_first_replicates_no_more_in_aggregate() {
    let mut rng = StdRng::seed_from_u64(0x0DDB);
    let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 9.0, 9.0), 1.0));
    let mut total = [0u64; 2]; // [diagonal-first, weight-only]
    for round in 0..12 {
        let mut sample = GridSample::new(&grid);
        for _ in 0..300 {
            let p = Point::new(rng.gen_range(0.0..9.0), rng.gen_range(0.0..9.0));
            let label = if rng.gen_bool(0.5) {
                SetLabel::R
            } else {
                SetLabel::S
            };
            sample.add(&grid, label, p);
        }
        let points: Vec<(Point, SetLabel)> = (0..2000)
            .map(|_| {
                let p = Point::new(rng.gen_range(0.0..9.0), rng.gen_range(0.0..9.0));
                let l = if rng.gen_bool(0.5) {
                    SetLabel::R
                } else {
                    SetLabel::S
                };
                (p, l)
            })
            .collect();
        for (idx, order) in [
            crate::EdgeOrder::DiagonalFirst,
            crate::EdgeOrder::WeightOnly,
        ]
        .iter()
        .enumerate()
        {
            let mut graph = AgreementGraph::build_unmarked(&grid, &sample, AgreementPolicy::Lpib);
            crate::build_duplicate_free_with_order(&mut graph, &sample, *order);
            let mut cells = Vec::with_capacity(4);
            for &(p, l) in &points {
                graph.assign(p, l, &mut cells);
                total[idx] += cells.len() as u64 - 1;
            }
        }
        let _ = round;
    }
    assert!(
        total[0] <= total[1],
        "diagonal-first {} must not exceed weight-only {}",
        total[0],
        total[1]
    );
}

/// Counts pairs violating the exactly-once property (0 = correct +
/// duplicate-free) — the non-panicking probe used by the mutation tests.
fn count_violations(graph: &AgreementGraph, r_pts: &[Point], s_pts: &[Point]) -> usize {
    let assign_all = |label: SetLabel, pts: &[Point]| -> Vec<Vec<CellCoord>> {
        let mut out = Vec::with_capacity(4);
        pts.iter()
            .map(|&p| {
                graph.assign(p, label, &mut out);
                out.clone()
            })
            .collect()
    };
    let r_cells = assign_all(SetLabel::R, r_pts);
    let s_cells = assign_all(SetLabel::S, s_pts);
    let eps2 = graph.grid().eps() * graph.grid().eps();
    let mut violations = 0usize;
    for (ri, r) in r_pts.iter().enumerate() {
        for (si, s) in s_pts.iter().enumerate() {
            if r.dist2(*s) > eps2 {
                continue;
            }
            let common = r_cells[ri]
                .iter()
                .filter(|c| s_cells[si].contains(c))
                .count();
            if common != 1 {
                violations += 1;
            }
        }
    }
    violations
}

/// Mutation test: the oracle harness itself must be able to detect broken
/// graphs — otherwise the green correctness suite proves nothing. An
/// *unmarked* graph with mixed agreement types must produce duplicates, and
/// a graph with one spurious extra marking must lose pairs.
#[test]
fn oracle_detects_corrupted_graphs() {
    let grid = quartet_grid();
    let sample = GridSample::new(&grid);
    let r_pts = lattice(0.0, 0.0);
    let s_pts = lattice(0.151, 0.087);

    // A mixed instantiation known to need markings: SW sends S to both SE
    // and NE while SE–NE carries R (the Figure-4 hazard).
    let sw = CellCoord { x: 0, y: 0 };
    let se = CellCoord { x: 1, y: 0 };
    let ne = CellCoord { x: 1, y: 1 };
    let types = move |a: CellCoord, b: CellCoord| {
        let pair = |p: CellCoord, q: CellCoord| (a == p && b == q) || (a == q && b == p);
        if pair(sw, se) || pair(sw, ne) {
            SetLabel::S
        } else {
            SetLabel::R
        }
    };

    // (1) Correct pipeline: zero violations.
    let mut good = AgreementGraph::from_pair_types(&grid, types);
    crate::build_duplicate_free(&mut good, &sample);
    assert_eq!(count_violations(&good, &r_pts, &s_pts), 0);

    // (2) Skipping Algorithm 1 leaves the duplicate hazard in place.
    let unmarked = AgreementGraph::from_pair_types(&grid, types);
    assert!(
        count_violations(&unmarked, &r_pts, &s_pts) > 0,
        "unmarked mixed graph must produce duplicates"
    );

    // (3) A spurious extra marking on the good graph severs replication the
    // assignment relies on: pairs go missing.
    let mut corrupted = good.clone();
    let q = asj_grid::QuartetId { x: 1, y: 1 };
    let mut broke_something = false;
    for from in asj_grid::Quadrant::ALL {
        for to in [from.horizontal(), from.vertical(), from.diagonal()] {
            if !corrupted.is_marked(q, from, to) {
                let mut mutant = corrupted.clone();
                mutant.mark(q, from, to);
                if count_violations(&mutant, &r_pts, &s_pts) > 0 {
                    broke_something = true;
                }
            }
        }
    }
    assert!(
        broke_something,
        "at least one spurious marking must be detectable"
    );
    let _ = &mut corrupted;
}

/// Exhaustive sweep over all 2^11 agreement instantiations of a 3×2 grid
/// (two quartets sharing a side pair): the cross-quartet interactions —
/// shared side-pair types with independent per-quartet markings — are only
/// reachable here. Points are concentrated around the two reference points
/// to keep the sweep fast while exercising every corner area.
#[test]
fn exhaustive_two_quartets_all_type_assignments() {
    let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 6.3, 4.2), 1.0));
    assert_eq!((grid.nx(), grid.ny()), (3, 2));
    let pairs = adjacent_pairs(&grid);
    assert_eq!(pairs.len(), 11);
    let sample = GridSample::new(&grid);

    // Points clustered around both reference points (2.1, 2.1), (4.2, 2.1).
    let mut r_pts = Vec::new();
    let mut s_pts = Vec::new();
    for &(cx, cy) in &[(2.1f64, 2.1f64), (4.2, 2.1)] {
        let mut dx = -1.3f64;
        while dx <= 1.3 {
            let mut dy = -1.3f64;
            while dy <= 1.3 {
                let rp = Point::new((cx + dx).clamp(0.01, 6.29), (cy + dy).clamp(0.01, 4.19));
                r_pts.push(rp);
                s_pts.push(Point::new(
                    (cx + dx + 0.17).clamp(0.01, 6.29),
                    (cy + dy + 0.11).clamp(0.01, 4.19),
                ));
                dy += 0.65;
            }
            dx += 0.65;
        }
    }

    for bits in 0..(1u64 << 11) {
        let mut graph = AgreementGraph::from_pair_types(&grid, |a, b| {
            let key = if (a.y, a.x) <= (b.y, b.x) {
                (a, b)
            } else {
                (b, a)
            };
            let idx = pairs.iter().position(|p| *p == key).unwrap();
            if bits >> idx & 1 == 0 {
                SetLabel::R
            } else {
                SetLabel::S
            }
        });
        crate::build_duplicate_free(&mut graph, &sample);
        assert_eq!(graph.validate().unresolved_hazards, 0, "bits={bits:#013b}");
        check_assignment(
            &graph,
            &r_pts,
            &s_pts,
            &format!("two-quartet bits={bits:#013b}"),
        );
    }
}
