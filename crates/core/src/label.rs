/// Which of the two join inputs a point (or an agreement) refers to.
///
/// The paper calls these the `R` and `S` sets; an agreement of type `α_R`
/// means *only R points are replicated across this border* (and symmetrically
/// for `α_S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SetLabel {
    R,
    S,
}

impl SetLabel {
    pub const BOTH: [SetLabel; 2] = [SetLabel::R, SetLabel::S];

    /// The other dataset.
    #[inline]
    pub fn other(self) -> SetLabel {
        match self {
            SetLabel::R => SetLabel::S,
            SetLabel::S => SetLabel::R,
        }
    }

    /// Dense index (`R = 0`, `S = 1`) for per-label arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            SetLabel::R => 0,
            SetLabel::S => 1,
        }
    }

    #[inline]
    pub fn from_index(i: usize) -> SetLabel {
        match i {
            0 => SetLabel::R,
            1 => SetLabel::S,
            _ => panic!("SetLabel index out of range: {i}"),
        }
    }
}

impl std::fmt::Display for SetLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetLabel::R => write!(f, "R"),
            SetLabel::S => write!(f, "S"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        for l in SetLabel::BOTH {
            assert_eq!(l.other().other(), l);
            assert_ne!(l.other(), l);
        }
    }

    #[test]
    fn index_roundtrip() {
        for l in SetLabel::BOTH {
            assert_eq!(SetLabel::from_index(l.index()), l);
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(SetLabel::R.to_string(), "R");
        assert_eq!(SetLabel::S.to_string(), "S");
    }
}
