use crate::{AgreementGraph, SetLabel};
use asj_geom::Point;
use asj_grid::{AreaClass, CellCoord, QuartetId};

/// Aggregate statistics over a stream of point assignments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssignStats {
    /// Points assigned.
    pub points: u64,
    /// Extra copies beyond the native cell (the paper's *replicated objects*
    /// metric).
    pub replicas: u64,
    /// Largest number of cells any single point was assigned to.
    pub max_cells: usize,
}

impl AssignStats {
    /// Records one assignment result (`cells` includes the native cell).
    pub fn record(&mut self, cells: &[CellCoord]) {
        self.points += 1;
        self.replicas += (cells.len() - 1) as u64;
        self.max_cells = self.max_cells.max(cells.len());
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &AssignStats) {
        self.points += other.points;
        self.replicas += other.replicas;
        self.max_cells = self.max_cells.max(other.max_cells);
    }
}

impl AgreementGraph {
    /// Algorithm 2 of the paper: assigns point `o` of dataset `label` to its
    /// native cell plus every cell it must be replicated to under the
    /// adaptive-replication rules. Cell ids are appended to `out` (cleared
    /// first); the native cell always comes first.
    ///
    /// Dispatch follows Figure 9:
    ///
    /// 1. *No-replication area* — native cell only.
    /// 2. *Merged duplicate-prone area* of quartet `q` — `MeDuPAr`
    ///    (Algorithm 3) for `q`, then `SupAr` (Algorithm 4) for the two
    ///    adjacent quartets `q'`, `q''`.
    /// 3. *Plain replication area* — replicate across the single border when
    ///    the agreement type matches, then `SupAr` for the two quartets at
    ///    the ends of that border.
    ///
    pub fn assign(&self, o: Point, label: SetLabel, out: &mut Vec<CellCoord>) {
        out.clear();
        let grid = self.grid();
        let native = grid.cell_of(o);
        out.push(native);
        match grid.classify_in_cell(o, native) {
            AreaClass::Interior => {}
            AreaClass::PlainStrip {
                neighbor,
                sup_quartets,
                ..
            } => {
                if self.pair_type(native, neighbor) == label {
                    out.push(neighbor);
                }
                for q in sup_quartets.into_iter().flatten() {
                    self.sup_ar(q, o, label, native, out);
                }
            }
            AreaClass::CornerSquare {
                quartet,
                sup_quartets,
            } => {
                self.me_du_par(quartet, o, label, native, out);
                // A merged-square point may sit in a supplementary area of
                // its *own* quartet (Figure 6: the part of the square beyond
                // ε of the reference point): when a neighbor's marked edge
                // excluded that neighbor's duplicate-prone partners from the
                // native cell, the point must follow them to the meeting
                // cell. Algorithm 2 as printed only probes the adjacent
                // quartets q' and q''; probing q as well is required for
                // correctness (see DESIGN.md, faithfulness notes).
                self.sup_ar(quartet, o, label, native, out);
                for q in sup_quartets.into_iter().flatten() {
                    self.sup_ar(q, o, label, native, out);
                }
            }
        }
        debug_assert!(
            {
                let mut sorted = out.clone();
                sorted.sort();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "assignment produced duplicate cells: {out:?}"
        );
    }

    /// The *simplified, non-duplicate-free* assignment evaluated in Table 6
    /// of the paper: agreement-based replication that ignores edge marking,
    /// locking and supplementary areas. Correct (Corollary 4.6) but produces
    /// duplicate results in mixed triangles (Lemma 4.8), so callers must pair
    /// it with an explicit deduplication operator after the join.
    pub fn assign_naive(&self, o: Point, label: SetLabel, out: &mut Vec<CellCoord>) {
        out.clear();
        let grid = self.grid();
        let native = grid.cell_of(o);
        out.push(native);
        match grid.classify_in_cell(o, native) {
            AreaClass::Interior => {}
            AreaClass::PlainStrip { neighbor, .. } => {
                if self.pair_type(native, neighbor) == label {
                    out.push(neighbor);
                }
            }
            AreaClass::CornerSquare { quartet, .. } => {
                let me = grid
                    .quadrant_of(native, quartet)
                    .expect("native cell must belong to quartet");
                for other in [me.horizontal(), me.vertical()] {
                    if self.edge_type(quartet, me, other) == label {
                        out.push(self.quartet_cell(quartet, other));
                    }
                }
                let diag = me.diagonal();
                let eps = grid.eps();
                if self.edge_type(quartet, me, diag) == label
                    && o.dist2(grid.corner_point(quartet)) <= eps * eps
                {
                    out.push(self.quartet_cell(quartet, diag));
                }
            }
        }
    }

    /// Algorithm 3 (`MeDuPAr`): replication of a point located in the merged
    /// duplicate-prone area of quartet `q`.
    ///
    /// * Each side neighbor receives the point when the edge type matches and
    ///   the edge is not marked.
    /// * The diagonal cell receives the point when its edge matches and is
    ///   unmarked, and either the point is genuinely within ε of the
    ///   reference point, or one of the matching side edges is marked — the
    ///   *redirect* that sends excluded duplicate-prone points to the cell
    ///   where their partners will meet them (§4.5.2, Figure 6).
    fn me_du_par(
        &self,
        q: QuartetId,
        o: Point,
        label: SetLabel,
        native: CellCoord,
        out: &mut Vec<CellCoord>,
    ) {
        let grid = self.grid();
        let me = grid
            .quadrant_of(native, q)
            .expect("native cell must belong to quartet");
        let sides = [me.horizontal(), me.vertical()];
        for j in sides {
            if self.edge_type(q, me, j) == label && !self.is_marked(q, me, j) {
                out.push(self.quartet_cell(q, j));
            }
        }
        let diag = me.diagonal();
        if self.edge_type(q, me, diag) == label && !self.is_marked(q, me, diag) {
            let eps = grid.eps();
            let within_ref = o.dist2(grid.corner_point(q)) <= eps * eps;
            let side_marked = sides
                .iter()
                .any(|&j| self.edge_type(q, me, j) == label && self.is_marked(q, me, j));
            if within_ref || side_marked {
                out.push(self.quartet_cell(q, diag));
            }
        }
    }

    /// Algorithm 4 (`SupAr`): replication of a point located in a
    /// *supplementary area* of quartet `q` (Definition 4.10).
    ///
    /// For each side neighbor `j` of the native cell within ε of the point
    /// (with the reference point within 2ε): if the `j → native` edge carries
    /// the *other* dataset and is marked, the duplicate-prone points of `j`
    /// that this point pairs with were excluded from the native cell; the
    /// point must follow them to the meeting cell — the quartet cell whose
    /// edges from both the native cell (matching type, unmarked) and from `j`
    /// (other type, unmarked) are intact. Candidates are probed in the
    /// paper's order: the remaining side neighbor of the native cell first,
    /// then its diagonal.
    fn sup_ar(
        &self,
        q: QuartetId,
        o: Point,
        label: SetLabel,
        native: CellCoord,
        out: &mut Vec<CellCoord>,
    ) {
        let grid = self.grid();
        let eps = grid.eps();
        let two_eps = 2.0 * eps;
        if o.dist2(grid.corner_point(q)) > two_eps * two_eps {
            return;
        }
        let me = grid
            .quadrant_of(native, q)
            .expect("native cell must belong to quartet");
        for j in [me.horizontal(), me.vertical()] {
            let cj = self.quartet_cell(q, j);
            if grid.cell_rect(cj).mindist2(o) > eps * eps {
                continue;
            }
            if self.edge_type(q, j, me) == label || !self.is_marked(q, j, me) {
                continue;
            }
            for k in [j.diagonal(), me.diagonal()] {
                if self.edge_type(q, me, k) == label
                    && !self.is_marked(q, me, k)
                    && self.edge_type(q, j, k) != label
                    && !self.is_marked(q, j, k)
                {
                    let ck = self.quartet_cell(q, k);
                    // MeDuPAr may already have replicated the point here
                    // (its push conditions on e(me→k) are identical).
                    if !out.contains(&ck) {
                        out.push(ck);
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgreementPolicy, GridSample};
    use asj_geom::Rect;
    use asj_grid::{Grid, GridSpec};

    fn grid() -> Grid {
        Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0))
    }

    fn uni_r(g: &Grid) -> AgreementGraph {
        AgreementGraph::build(g, &GridSample::new(g), AgreementPolicy::UniformR)
    }

    #[test]
    fn interior_point_native_only() {
        let g = grid();
        let graph = uni_r(&g);
        let mut out = Vec::new();
        graph.assign(Point::new(3.75, 3.75), SetLabel::R, &mut out);
        assert_eq!(out, vec![CellCoord { x: 1, y: 1 }]);
    }

    #[test]
    fn uniform_r_replicates_r_like_pbsm() {
        let g = grid();
        let graph = uni_r(&g);
        let mut out = Vec::new();
        // Near interior corner (2.5, 2.5) within ε of E, N and NE cells.
        let p = Point::new(2.4, 2.4);
        graph.assign(p, SetLabel::R, &mut out);
        let mut expected = vec![CellCoord { x: 0, y: 0 }];
        g.push_cells_within_eps(p, &mut expected);
        out.sort();
        expected.sort();
        assert_eq!(out, expected);
    }

    #[test]
    fn uniform_r_never_replicates_s() {
        let g = grid();
        let graph = uni_r(&g);
        let mut out = Vec::new();
        for p in [
            Point::new(2.4, 2.4),
            Point::new(2.6, 1.0),
            Point::new(4.9, 4.9),
            Point::new(7.4, 2.6),
        ] {
            graph.assign(p, SetLabel::S, &mut out);
            assert_eq!(out.len(), 1, "S point must stay native under UNI(R): {p:?}");
        }
    }

    #[test]
    fn corner_point_far_from_reference_skips_diagonal() {
        let g = grid();
        let graph = uni_r(&g);
        let mut out = Vec::new();
        // In the corner square of (2.5, 2.5) (both axis gaps ≤ ε) but the
        // straight-line distance to the corner exceeds ε.
        let p = Point::new(1.6, 1.8);
        assert!(p.dist(Point::new(2.5, 2.5)) > 1.0);
        graph.assign(p, SetLabel::R, &mut out);
        out.sort();
        assert_eq!(
            out,
            vec![
                CellCoord { x: 0, y: 0 },
                CellCoord { x: 0, y: 1 },
                CellCoord { x: 1, y: 0 }
            ]
        );
    }

    #[test]
    fn assign_stats_accumulates() {
        let mut st = AssignStats::default();
        st.record(&[CellCoord { x: 0, y: 0 }]);
        st.record(&[
            CellCoord { x: 0, y: 0 },
            CellCoord { x: 1, y: 0 },
            CellCoord { x: 1, y: 1 },
        ]);
        assert_eq!(st.points, 2);
        assert_eq!(st.replicas, 2);
        assert_eq!(st.max_cells, 3);
        let mut other = AssignStats::default();
        other.record(&[CellCoord { x: 5, y: 5 }]);
        st.merge(&other);
        assert_eq!(st.points, 3);
        assert_eq!(st.replicas, 2);
    }
}
