use crate::{AgreementPolicy, GridSample, SetLabel};
use asj_grid::{CellCoord, Grid, Quadrant, QuartetId};

/// Result of [`AgreementGraph::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphValidation {
    /// Duplicate-producing triangles left unresolved (must be 0 after
    /// Algorithm 1).
    pub unresolved_hazards: usize,
    pub marked_edges: usize,
    pub locked_edges: usize,
}

/// Marking/locking state of one directed edge inside one quartet subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeState {
    /// Marked edges exclude the tail cell's duplicate-prone points from
    /// replication to the head cell (§4.5.1).
    pub marked: bool,
    /// Locked edges may never be marked; they carry replication that an
    /// earlier marking relies on for correctness (§4.5.3).
    pub locked: bool,
}

/// The paper's *graph of agreements* (Definition 4.2).
///
/// * Vertices are grid cells.
/// * Every pair of adjacent cells carries an **agreement type** — the dataset
///   (`R` or `S`) whose points are replicated across that border. The type is
///   shared by both directed edges of the pair and, for side-adjacent cells,
///   by both quartet subgraphs the pair participates in ("the edges that link
///   two vertices are always of the same type").
/// * Each interior grid corner defines a *quartet* subgraph of 12 directed
///   edges (6 cell pairs × 2 directions). Marking and locking state is kept
///   **per quartet**, because a marking refers to the duplicate-prone area at
///   that quartet's reference point.
///
/// Storage is dense (indexed by the grid's cell/quartet indices), which makes
/// the per-point lookups of Algorithms 2–4 cache-friendly: the paper's two
/// dictionaries (§5.1) become three type arrays plus one `u32` of edge bits
/// per quartet.
///
/// # Example
///
/// ```
/// use asj_core::{AgreementGraph, AgreementPolicy, GridSample, SetLabel};
/// use asj_geom::{Point, Rect};
/// use asj_grid::{Grid, GridSpec};
///
/// let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
/// let sample = GridSample::from_points(
///     &grid,
///     vec![Point::new(2.4, 2.4)],          // R sample
///     vec![Point::new(2.6, 2.6)],          // S sample
/// );
/// let graph = AgreementGraph::build(&grid, &sample, AgreementPolicy::Lpib);
/// assert_eq!(graph.validate().unresolved_hazards, 0);
///
/// // Assign a point: its native cell always comes first, replicas follow.
/// let mut cells = Vec::new();
/// graph.assign(Point::new(2.4, 2.4), SetLabel::R, &mut cells);
/// assert_eq!(cells[0], grid.cell_of(Point::new(2.4, 2.4)));
/// assert!(cells.len() <= 4);
/// ```
#[derive(Debug, Clone)]
pub struct AgreementGraph {
    grid: Grid,
    /// Type of the horizontal pair `(x,y)–(x+1,y)`; index `y·(nx−1)+x`.
    h_type: Vec<SetLabel>,
    /// Type of the vertical pair `(x,y)–(x,y+1)`; index `y·nx+x`.
    v_type: Vec<SetLabel>,
    /// Types of the two diagonal pairs of each quartet: `[SW–NE, SE–NW]`.
    d_type: Vec<[SetLabel; 2]>,
    /// Per-quartet edge bits: bit `from·4+to` = marked,
    /// bit `16+from·4+to` = locked.
    state: Vec<u32>,
}

impl AgreementGraph {
    /// Builds the graph for `grid`: agreement types are chosen by `policy`
    /// from the sampled statistics, then Algorithm 1 removes all
    /// duplicate-producing triangles (edge marking + locking).
    ///
    /// # Panics
    /// Panics if the grid does not satisfy the `l > 2ε` precondition
    /// ([`Grid::supports_agreements`]).
    pub fn build(grid: &Grid, sample: &GridSample, policy: AgreementPolicy) -> Self {
        let mut g = Self::from_pair_types(grid, |a, b| policy.agreement_type(grid, sample, a, b));
        crate::markings::build_duplicate_free(&mut g, sample);
        g
    }

    /// Builds the graph with policy-chosen agreement types but **without**
    /// running Algorithm 1 — the "simplified" variant of Table 6 whose
    /// assignment produces duplicates and needs a deduplication operator.
    pub fn build_unmarked(grid: &Grid, sample: &GridSample, policy: AgreementPolicy) -> Self {
        Self::from_pair_types(grid, |a, b| policy.agreement_type(grid, sample, a, b))
    }

    /// Builds an *unmarked* graph with explicitly given pair types. Exposed
    /// so tests and ablations can instantiate arbitrary graphs; run
    /// [`crate::build_duplicate_free`] afterwards to restore the
    /// duplicate-free property.
    pub fn from_pair_types<F>(grid: &Grid, mut pair_type: F) -> Self
    where
        F: FnMut(CellCoord, CellCoord) -> SetLabel,
    {
        assert!(
            grid.supports_agreements(),
            "agreement graphs require cell side > 2*eps on every multi-cell axis"
        );
        let nx = grid.nx() as usize;
        let ny = grid.ny() as usize;
        let mut h_type = Vec::with_capacity(nx.saturating_sub(1) * ny);
        for y in 0..ny as u32 {
            for x in 0..nx.saturating_sub(1) as u32 {
                let a = CellCoord { x, y };
                let b = CellCoord { x: x + 1, y };
                h_type.push(pair_type(a, b));
            }
        }
        let mut v_type = Vec::with_capacity(nx * ny.saturating_sub(1));
        for y in 0..ny.saturating_sub(1) as u32 {
            for x in 0..nx as u32 {
                let a = CellCoord { x, y };
                let b = CellCoord { x, y: y + 1 };
                v_type.push(pair_type(a, b));
            }
        }
        let mut d_type = Vec::with_capacity(grid.num_quartets());
        for q in grid.quartets() {
            let cells = grid.quartet_cells(q);
            d_type.push([
                pair_type(cells[Quadrant::Sw.index()], cells[Quadrant::Ne.index()]),
                pair_type(cells[Quadrant::Se.index()], cells[Quadrant::Nw.index()]),
            ]);
        }
        let state = vec![0u32; grid.num_quartets()];
        AgreementGraph {
            grid: grid.clone(),
            h_type,
            v_type,
            d_type,
            state,
        }
    }

    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Agreement type of the pair of adjacent cells `(a, b)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the cells are not 8-adjacent.
    #[inline]
    pub fn pair_type(&self, a: CellCoord, b: CellCoord) -> SetLabel {
        let nx = self.grid.nx() as usize;
        let dx = b.x as i64 - a.x as i64;
        let dy = b.y as i64 - a.y as i64;
        debug_assert!(dx.abs() <= 1 && dy.abs() <= 1 && (dx, dy) != (0, 0));
        match (dx, dy) {
            (_, 0) => {
                let x = a.x.min(b.x) as usize;
                self.h_type[a.y as usize * (nx - 1) + x]
            }
            (0, _) => {
                let y = a.y.min(b.y) as usize;
                self.v_type[y * nx + a.x as usize]
            }
            _ => {
                let q = QuartetId {
                    x: a.x.max(b.x),
                    y: a.y.max(b.y),
                };
                // SW–NE runs "/" upward-right; SE–NW runs "\" upward-left.
                let idx = if dx == dy { 0 } else { 1 };
                self.d_type[self.grid.quartet_index(q)][idx]
            }
        }
    }

    /// The cell occupying `quadrant` in quartet `q`.
    #[inline]
    pub fn quartet_cell(&self, q: QuartetId, quadrant: Quadrant) -> CellCoord {
        self.grid.quartet_cells(q)[quadrant.index()]
    }

    /// Agreement type of the directed edge `from → to` inside quartet `q`
    /// (identical for both directions and, for side pairs, both subgraphs).
    #[inline]
    pub fn edge_type(&self, q: QuartetId, from: Quadrant, to: Quadrant) -> SetLabel {
        self.pair_type(self.quartet_cell(q, from), self.quartet_cell(q, to))
    }

    #[inline]
    fn bit(from: Quadrant, to: Quadrant) -> u32 {
        debug_assert_ne!(from, to);
        1 << (from.index() * 4 + to.index())
    }

    /// Marking/locking state of the directed edge `from → to` in quartet `q`.
    #[inline]
    pub fn edge_state(&self, q: QuartetId, from: Quadrant, to: Quadrant) -> EdgeState {
        let bits = self.state[self.grid.quartet_index(q)];
        let b = Self::bit(from, to);
        EdgeState {
            marked: bits & b != 0,
            locked: bits & (b << 16) != 0,
        }
    }

    #[inline]
    pub fn is_marked(&self, q: QuartetId, from: Quadrant, to: Quadrant) -> bool {
        self.state[self.grid.quartet_index(q)] & Self::bit(from, to) != 0
    }

    pub(crate) fn mark(&mut self, q: QuartetId, from: Quadrant, to: Quadrant) {
        let qi = self.grid.quartet_index(q);
        self.state[qi] |= Self::bit(from, to);
    }

    pub(crate) fn lock(&mut self, q: QuartetId, from: Quadrant, to: Quadrant) {
        let qi = self.grid.quartet_index(q);
        self.state[qi] |= Self::bit(from, to) << 16;
    }

    /// Serialized footprint of the graph when broadcast to the executors
    /// (Algorithm 5, line 6): grid header, one byte per side-pair agreement
    /// type, two per quartet for the diagonals, and the 4-byte edge-state
    /// word per quartet.
    pub fn broadcast_bytes(&self) -> u64 {
        (40 + self.h_type.len() + self.v_type.len() + 2 * self.d_type.len() + 4 * self.state.len())
            as u64
    }

    /// Number of marked edges over all quartets (diagnostics).
    pub fn marked_edge_count(&self) -> usize {
        self.state
            .iter()
            .map(|s| (s & 0xFFFF).count_ones() as usize)
            .sum()
    }

    /// Number of locked edges over all quartets (diagnostics).
    pub fn locked_edge_count(&self) -> usize {
        self.state
            .iter()
            .map(|s| (s >> 16).count_ones() as usize)
            .sum()
    }

    /// Structural validation of the duplicate-free property (Lemma 4.8 +
    /// §4.5): counts *unresolved hazards* — triangles where a vertex still
    /// replicates the same dataset to two other vertices with neither edge
    /// marked. A graph produced by Algorithm 1 must report zero.
    pub fn validate(&self) -> GraphValidation {
        let mut v = GraphValidation {
            unresolved_hazards: 0,
            marked_edges: self.marked_edge_count(),
            locked_edges: self.locked_edge_count(),
        };
        for q in self.grid.quartets() {
            for i in Quadrant::ALL {
                for j in Quadrant::ALL {
                    for k in Quadrant::ALL {
                        if i == j || j == k || i == k || j.index() > k.index() {
                            continue;
                        }
                        let tau = self.edge_type(q, i, j);
                        if self.edge_type(q, i, k) == tau
                            && self.edge_type(q, j, k) != tau
                            && !self.is_marked(q, i, j)
                            && !self.is_marked(q, i, k)
                        {
                            v.unresolved_hazards += 1;
                        }
                    }
                }
            }
        }
        v
    }

    /// Count of agreements of each type (`[α_R, α_S]`) over all cell pairs.
    pub fn agreement_histogram(&self) -> [usize; 2] {
        let mut h = [0usize; 2];
        for t in self.h_type.iter().chain(&self.v_type) {
            h[t.index()] += 1;
        }
        for [a, b] in &self.d_type {
            h[a.index()] += 1;
            h[b.index()] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::Rect;
    use asj_grid::GridSpec;

    fn grid(n: f64) -> Grid {
        Grid::new(GridSpec::new(Rect::new(0.0, 0.0, n, n), 1.0))
    }

    fn uniform_r(g: &Grid) -> AgreementGraph {
        AgreementGraph::from_pair_types(g, |_, _| SetLabel::R)
    }

    #[test]
    fn pair_type_symmetric_lookup() {
        let g = grid(10.0);
        let gr = AgreementGraph::from_pair_types(&g, |a, b| {
            // Deterministic but varied assignment.
            if (a.x + a.y + b.x + b.y) % 2 == 0 {
                SetLabel::R
            } else {
                SetLabel::S
            }
        });
        for y in 0..g.ny() {
            for x in 0..g.nx() {
                let a = CellCoord { x, y };
                for (dx, dy) in [(1i64, 0i64), (0, 1), (1, 1), (1, -1)] {
                    let bx = x as i64 + dx;
                    let by = y as i64 + dy;
                    if bx < 0 || by < 0 || bx >= g.nx() as i64 || by >= g.ny() as i64 {
                        continue;
                    }
                    let b = CellCoord {
                        x: bx as u32,
                        y: by as u32,
                    };
                    assert_eq!(gr.pair_type(a, b), gr.pair_type(b, a), "{a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn edge_type_matches_pair_type() {
        let g = grid(10.0);
        let gr = AgreementGraph::from_pair_types(&g, |a, b| {
            if a.x.min(b.x) % 2 == 0 {
                SetLabel::R
            } else {
                SetLabel::S
            }
        });
        for q in g.quartets() {
            for from in Quadrant::ALL {
                for to in Quadrant::ALL {
                    if from == to {
                        continue;
                    }
                    let a = gr.quartet_cell(q, from);
                    let b = gr.quartet_cell(q, to);
                    assert_eq!(gr.edge_type(q, from, to), gr.pair_type(a, b));
                }
            }
        }
    }

    #[test]
    fn mark_and_lock_are_per_quartet() {
        let g = grid(10.0);
        let mut gr = uniform_r(&g);
        let q1 = QuartetId { x: 1, y: 1 };
        let q2 = QuartetId { x: 2, y: 1 };
        gr.mark(q1, Quadrant::Sw, Quadrant::Se);
        gr.lock(q1, Quadrant::Se, Quadrant::Ne);
        assert!(gr.edge_state(q1, Quadrant::Sw, Quadrant::Se).marked);
        assert!(gr.edge_state(q1, Quadrant::Se, Quadrant::Ne).locked);
        // The reverse direction and other quartets are untouched.
        assert!(!gr.edge_state(q1, Quadrant::Se, Quadrant::Sw).marked);
        assert!(!gr.edge_state(q2, Quadrant::Sw, Quadrant::Se).marked);
        assert_eq!(gr.marked_edge_count(), 1);
        assert_eq!(gr.locked_edge_count(), 1);
    }

    #[test]
    fn histogram_counts_all_pairs() {
        let g = grid(10.0); // 4×4 cells
        let gr = uniform_r(&g);
        let [r, s] = gr.agreement_histogram();
        // Side pairs: 2·4·3 = 24; diagonal pairs: 2 per quartet · 9 = 18.
        assert_eq!(r, 42);
        assert_eq!(s, 0);
    }

    #[test]
    #[should_panic(expected = "agreement graphs require")]
    fn rejects_eps_grid() {
        let g = Grid::new(GridSpec::with_factor(
            Rect::new(0.0, 0.0, 10.0, 10.0),
            1.0,
            1.0,
        ));
        let _ = uniform_r(&g);
    }
}
