use crate::SetLabel;
use asj_geom::Point;
use asj_grid::{CellCoord, Grid};

/// One of the eight neighbor directions of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Dir8 {
    W = 0,
    E = 1,
    S = 2,
    N = 3,
    Sw = 4,
    Se = 5,
    Nw = 6,
    Ne = 7,
}

impl Dir8 {
    pub const ALL: [Dir8; 8] = [
        Dir8::W,
        Dir8::E,
        Dir8::S,
        Dir8::N,
        Dir8::Sw,
        Dir8::Se,
        Dir8::Nw,
        Dir8::Ne,
    ];

    /// Direction from cell `a` to adjacent cell `b`.
    ///
    /// # Panics
    /// Panics if the cells are identical or not 8-adjacent.
    pub fn between(a: CellCoord, b: CellCoord) -> Dir8 {
        let dx = b.x as i64 - a.x as i64;
        let dy = b.y as i64 - a.y as i64;
        match (dx, dy) {
            (-1, 0) => Dir8::W,
            (1, 0) => Dir8::E,
            (0, -1) => Dir8::S,
            (0, 1) => Dir8::N,
            (-1, -1) => Dir8::Sw,
            (1, -1) => Dir8::Se,
            (-1, 1) => Dir8::Nw,
            (1, 1) => Dir8::Ne,
            _ => panic!("cells are not adjacent: {a:?} -> {b:?}"),
        }
    }

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Sampled per-cell statistics driving agreement selection, edge weights and
/// load balancing (§5.1, first dictionary; §6.2).
///
/// For every cell we track, per dataset:
///
/// * the total number of sampled points, and
/// * for each of the 8 neighbor directions, how many sampled points are
///   **replication candidates** toward that neighbor (`MINDIST ≤ ε`).
///
/// In the paper this dictionary is filled on the Spark driver from a small
/// sample (3 % by default) of both inputs before the grid is broadcast.
#[derive(Debug, Clone)]
pub struct GridSample {
    totals: Vec<[u64; 2]>,
    border: Vec<[[u64; 2]; 8]>,
    sampled: [u64; 2],
}

impl GridSample {
    /// An empty sample sized for `grid`.
    pub fn new(grid: &Grid) -> Self {
        GridSample {
            totals: vec![[0; 2]; grid.num_cells()],
            border: vec![[[0; 2]; 8]; grid.num_cells()],
            sampled: [0; 2],
        }
    }

    /// Builds a sample from two point iterators.
    pub fn from_points<IR, IS>(grid: &Grid, r: IR, s: IS) -> Self
    where
        IR: IntoIterator<Item = Point>,
        IS: IntoIterator<Item = Point>,
    {
        let mut sample = GridSample::new(grid);
        for p in r {
            sample.add(grid, SetLabel::R, p);
        }
        for p in s {
            sample.add(grid, SetLabel::S, p);
        }
        sample
    }

    /// Records one sampled point.
    pub fn add(&mut self, grid: &Grid, label: SetLabel, p: Point) {
        let cell = grid.cell_of(p);
        let ci = grid.cell_index(cell);
        let li = label.index();
        self.totals[ci][li] += 1;
        self.sampled[li] += 1;
        let mut neighbors = Vec::with_capacity(4);
        grid.push_cells_within_eps(p, &mut neighbors);
        for n in neighbors {
            self.border[ci][Dir8::between(cell, n).index()][li] += 1;
        }
    }

    /// Merges another sample (built over the same grid) into this one.
    pub fn merge(&mut self, other: &GridSample) {
        assert_eq!(
            self.totals.len(),
            other.totals.len(),
            "samples cover different grids"
        );
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            a[0] += b[0];
            a[1] += b[1];
        }
        for (a, b) in self.border.iter_mut().zip(&other.border) {
            for d in 0..8 {
                a[d][0] += b[d][0];
                a[d][1] += b[d][1];
            }
        }
        self.sampled[0] += other.sampled[0];
        self.sampled[1] += other.sampled[1];
    }

    /// Total sampled points of `label` in `cell`.
    #[inline]
    pub fn total(&self, cell_index: usize, label: SetLabel) -> u64 {
        self.totals[cell_index][label.index()]
    }

    /// Sampled points of `label` in `cell` that are replication candidates
    /// toward the neighbor in direction `d`.
    #[inline]
    pub fn border_count(&self, cell_index: usize, d: Dir8, label: SetLabel) -> u64 {
        self.border[cell_index][d.index()][label.index()]
    }

    /// Total points sampled from each input set (`[R, S]`).
    #[inline]
    pub fn sampled(&self) -> [u64; 2] {
        self.sampled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_geom::Rect;
    use asj_grid::GridSpec;

    fn grid() -> Grid {
        Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0))
    }

    #[test]
    fn dir8_between_all_neighbors() {
        let c = CellCoord { x: 1, y: 1 };
        assert_eq!(Dir8::between(c, CellCoord { x: 0, y: 1 }), Dir8::W);
        assert_eq!(Dir8::between(c, CellCoord { x: 2, y: 1 }), Dir8::E);
        assert_eq!(Dir8::between(c, CellCoord { x: 1, y: 0 }), Dir8::S);
        assert_eq!(Dir8::between(c, CellCoord { x: 1, y: 2 }), Dir8::N);
        assert_eq!(Dir8::between(c, CellCoord { x: 0, y: 0 }), Dir8::Sw);
        assert_eq!(Dir8::between(c, CellCoord { x: 2, y: 0 }), Dir8::Se);
        assert_eq!(Dir8::between(c, CellCoord { x: 0, y: 2 }), Dir8::Nw);
        assert_eq!(Dir8::between(c, CellCoord { x: 2, y: 2 }), Dir8::Ne);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn dir8_rejects_same_cell() {
        let c = CellCoord { x: 1, y: 1 };
        Dir8::between(c, c);
    }

    #[test]
    fn interior_point_counts_only_total() {
        let g = grid();
        let mut s = GridSample::new(&g);
        s.add(&g, SetLabel::R, Point::new(3.75, 3.75)); // center of cell (1,1)
        let ci = g.cell_index(CellCoord { x: 1, y: 1 });
        assert_eq!(s.total(ci, SetLabel::R), 1);
        assert_eq!(s.total(ci, SetLabel::S), 0);
        for d in Dir8::ALL {
            assert_eq!(s.border_count(ci, d, SetLabel::R), 0);
        }
        assert_eq!(s.sampled(), [1, 0]);
    }

    #[test]
    fn corner_point_counts_three_directions() {
        let g = grid();
        let mut s = GridSample::new(&g);
        // Cell (0,0) near the interior corner (2.5, 2.5): candidate for E, N
        // and NE neighbors.
        s.add(&g, SetLabel::S, Point::new(2.4, 2.4));
        let ci = g.cell_index(CellCoord { x: 0, y: 0 });
        assert_eq!(s.border_count(ci, Dir8::E, SetLabel::S), 1);
        assert_eq!(s.border_count(ci, Dir8::N, SetLabel::S), 1);
        assert_eq!(s.border_count(ci, Dir8::Ne, SetLabel::S), 1);
        assert_eq!(s.border_count(ci, Dir8::W, SetLabel::S), 0);
        assert_eq!(s.border_count(ci, Dir8::E, SetLabel::R), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let g = grid();
        let mut a = GridSample::new(&g);
        let mut b = GridSample::new(&g);
        a.add(&g, SetLabel::R, Point::new(2.4, 2.4));
        b.add(&g, SetLabel::R, Point::new(2.4, 2.4));
        b.add(&g, SetLabel::S, Point::new(7.0, 7.0));
        a.merge(&b);
        let ci = g.cell_index(CellCoord { x: 0, y: 0 });
        assert_eq!(a.total(ci, SetLabel::R), 2);
        assert_eq!(a.border_count(ci, Dir8::Ne, SetLabel::R), 2);
        assert_eq!(a.sampled(), [2, 1]);
    }
}
