//! The paper's core contribution: **agreement-based adaptive replication**
//! for parallel ε-distance spatial joins.
//!
//! PBSM-style algorithms pick *one* of the two datasets globally and
//! replicate its points into every cell within distance ε. On skewed data
//! this is wasteful: near a border where R is dense and S is sparse it would
//! be far cheaper to replicate S, and vice versa a few cells away. The paper
//! therefore lets every pair of adjacent cells strike a local *agreement*
//! (§4.2) about which dataset crosses their border, modelled as a directed,
//! weighted multigraph — the [`AgreementGraph`].
//!
//! Mixing agreement types re-introduces two hazards that PBSM never faces:
//!
//! * **duplicates** — a result pair can materialize in two cells when a cell
//!   replicates the same point to two neighbors of a *triad* with both
//!   agreement types (Lemma 4.8). The fix is *edge marking* (§4.5.1): points
//!   in the *duplicate-prone area* of the marked edge's tail are excluded
//!   from that replication.
//! * **lost results** — marking can orphan pairs whose partner sits in a
//!   *supplementary area* (Definition 4.10); those points are re-routed to
//!   the cell where both sides of the pair still meet, and *edge locking*
//!   (§4.5.3) keeps later markings from severing that meeting cell.
//!
//! [`build_duplicate_free`] is the paper's Algorithm 1; [`AgreementGraph::assign`]
//! implements Algorithms 2 (point replication), 3 (`MeDuPAr`) and 4 (`SupAr`).
//! The property-test suite in this crate checks, against a brute-force
//! oracle, that the resulting assignment is *correct* (Definition 3.2) and
//! *duplicate-free* (Definition 3.3) for randomized grids, policies and point
//! sets.

mod assign;
mod cost;
mod graph;
mod label;
mod markings;
mod policy;
mod stats;

pub use assign::AssignStats;
pub use cost::{
    cell_costs, estimate_candidates, CellCost, KernelCostModel, KernelKind, LocalKernel,
};
pub use graph::{AgreementGraph, EdgeState, GraphValidation};
pub use label::SetLabel;
pub use markings::{build_duplicate_free, build_duplicate_free_with_order, EdgeOrder};
pub use policy::AgreementPolicy;
pub use stats::{Dir8, GridSample};

#[cfg(test)]
mod oracle_tests;
