use crate::{AgreementGraph, SetLabel};
use asj_geom::Point;
use asj_grid::CellCoord;

/// Partition-local join kernel requested by a join spec (ablation A1 in
/// DESIGN.md). `Auto` — the default — defers the choice to a calibrated
/// [`KernelCostModel`] *per cell group*, following the runtime
/// join-location-selection argument of Chandra & Sudarshan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalKernel {
    /// All `r·s` candidates of a cell with immediate refinement — the
    /// paper's hash-join-then-filter execution (Algorithm 5, line 9).
    NestedLoop,
    /// Forward plane sweep along x (the kernel of the original PBSM and of
    /// the tuned in-memory variants of Tsitsigkos et al.).
    PlaneSweep,
    /// ε-sized bucket grid over the group with 3×3 neighborhood probing —
    /// wins when the group extent is much larger than ε (e.g. quadtree
    /// leaves).
    GridBucket,
    /// Pick the cheapest of the three per cell group from
    /// `(|R_i|, |S_i|, ε, group extent)` via the calibrated cost model.
    #[default]
    Auto,
}

impl LocalKernel {
    /// CLI / config spelling of this kernel.
    pub fn name(self) -> &'static str {
        match self {
            LocalKernel::NestedLoop => "nested-loop",
            LocalKernel::PlaneSweep => "plane-sweep",
            LocalKernel::GridBucket => "grid-bucket",
            LocalKernel::Auto => "auto",
        }
    }
}

impl std::str::FromStr for LocalKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "nested-loop" => LocalKernel::NestedLoop,
            "plane-sweep" => LocalKernel::PlaneSweep,
            "grid-bucket" => LocalKernel::GridBucket,
            "auto" => LocalKernel::Auto,
            other => return Err(format!("unknown kernel '{other}'")),
        })
    }
}

/// The fixed kernel that actually executes a cell group once `Auto` has been
/// resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    NestedLoop,
    PlaneSweep,
    GridBucket,
}

/// Calibrated per-operation costs of the three local kernels, in arbitrary
/// but mutually comparable units (nanoseconds when measured).
///
/// The model predicts the time of joining one cell group of `r × s` points
/// whose union spans `extent_w × extent_h`:
///
/// * nested loop — `r·s · nl_pair`,
/// * plane sweep — `(r+s) · ps_point + r·s · min(1, 2ε/w) · ps_pair`
///   (the sweep touches only pairs inside the ε x-window; under a uniform
///   spread, that is a `2ε/w` fraction of all pairs),
/// * grid bucket — `(r+s) · bucket_point + r·s · min(1, 3ε/w) · min(1, 3ε/h)
///   · bucket_pair` (each probe visits the 3×3 ε-bucket neighborhood).
///
/// Constants default to hand-tuned ratios and are replaced at cluster
/// startup by a one-shot microbenchmark (`asj_index::kernels::
/// calibrate_cost_model`), cached on the `Cluster`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCostModel {
    /// Cost of one nested-loop candidate (distance evaluation + compare).
    pub nl_pair: f64,
    /// Per-point setup cost of the plane sweep (coordinate extraction and,
    /// without sort-reuse, its share of the sort).
    pub ps_point: f64,
    /// Cost of one pair scanned inside the sweep's ε x-window.
    pub ps_pair: f64,
    /// Per-point cost of building the ε-bucket grid.
    pub bucket_point: f64,
    /// Cost of one pair probed in the 3×3 bucket neighborhood.
    pub bucket_pair: f64,
}

impl Default for KernelCostModel {
    fn default() -> Self {
        // Uncalibrated fallback: ratios chosen so that nested loop wins tiny
        // or fully-within-ε groups, plane sweep mid-sized cells, and the
        // bucket grid groups whose extent dwarfs ε.
        KernelCostModel {
            nl_pair: 1.0,
            ps_point: 8.0,
            ps_pair: 1.4,
            bucket_point: 12.0,
            bucket_pair: 1.2,
        }
    }
}

impl KernelCostModel {
    /// Below this many worst-case pairs a group is joined nested-loop
    /// unconditionally: no kernel setup can amortize. Kept deliberately tiny
    /// so `Auto` can inflate the candidate count over the prefiltering
    /// kernels by at most this much per group.
    pub const NL_TINY_PAIRS: u64 = 4;

    /// Predicted cost of joining an `r × s` group spanning
    /// `extent_w × extent_h` with `kind`.
    pub fn predict(
        &self,
        kind: KernelKind,
        r: u64,
        s: u64,
        eps: f64,
        extent_w: f64,
        extent_h: f64,
    ) -> f64 {
        let pairs = r as f64 * s as f64;
        let points = (r + s) as f64;
        let frac = |window: f64, extent: f64| {
            if extent > window {
                window / extent
            } else {
                1.0
            }
        };
        match kind {
            KernelKind::NestedLoop => pairs * self.nl_pair,
            KernelKind::PlaneSweep => {
                points * self.ps_point + pairs * frac(2.0 * eps, extent_w) * self.ps_pair
            }
            KernelKind::GridBucket => {
                points * self.bucket_point
                    + pairs
                        * frac(3.0 * eps, extent_w)
                        * frac(3.0 * eps, extent_h)
                        * self.bucket_pair
            }
        }
    }

    /// The per-group kernel decision of `LocalKernel::Auto`.
    ///
    /// Nested loop is eligible only where it cannot inflate the candidate
    /// count over the ε-window prefilter of the other two kernels: trivially
    /// small groups ([`Self::NL_TINY_PAIRS`]) and groups whose extent fits
    /// inside `ε × ε` (where every pair passes the window anyway). Everywhere
    /// else the choice is the cheaper of plane sweep and grid bucket — whose
    /// candidate counts are identical by construction.
    pub fn choose(&self, r: u64, s: u64, eps: f64, extent_w: f64, extent_h: f64) -> KernelKind {
        if r.saturating_mul(s) <= Self::NL_TINY_PAIRS {
            return KernelKind::NestedLoop;
        }
        let ps = self.predict(KernelKind::PlaneSweep, r, s, eps, extent_w, extent_h);
        let bucket = self.predict(KernelKind::GridBucket, r, s, eps, extent_w, extent_h);
        if extent_w <= eps && extent_h <= eps {
            let nl = self.predict(KernelKind::NestedLoop, r, s, eps, extent_w, extent_h);
            if nl <= ps && nl <= bucket {
                return KernelKind::NestedLoop;
            }
        }
        if ps <= bucket {
            KernelKind::PlaneSweep
        } else {
            KernelKind::GridBucket
        }
    }

    /// Resolves a requested kernel to the one that will execute the group.
    pub fn resolve(
        &self,
        requested: LocalKernel,
        r: u64,
        s: u64,
        eps: f64,
        extent_w: f64,
        extent_h: f64,
    ) -> KernelKind {
        match requested {
            LocalKernel::NestedLoop => KernelKind::NestedLoop,
            LocalKernel::PlaneSweep => KernelKind::PlaneSweep,
            LocalKernel::GridBucket => KernelKind::GridBucket,
            LocalKernel::Auto => self.choose(r, s, eps, extent_w, extent_h),
        }
    }

    /// LPT placement weight of a cell: the predicted cost of the kernel that
    /// will actually run there, scaled to an integer. Replaces the raw `r·s`
    /// of [`CellCost::cost`] so simulated makespans track the chosen kernel.
    pub fn lpt_weight(
        &self,
        requested: LocalKernel,
        r: u64,
        s: u64,
        eps: f64,
        extent_w: f64,
        extent_h: f64,
    ) -> u64 {
        if r == 0 || s == 0 {
            return 0;
        }
        let kind = self.resolve(requested, r, s, eps, extent_w, extent_h);
        let pred = self.predict(kind, r, s, eps, extent_w, extent_h);
        // ×16 keeps sub-unit predictions distinguishable after rounding.
        ((pred * 16.0).ceil() as u64).max(1)
    }
}

/// Estimated workload of one grid cell: the number of points of each dataset
/// assigned to it (natives plus replicas). The worst-case join cost of the
/// cell is the product `r · s` — the candidate pairs examined by the
/// partition-local join (Table 1 of the paper, and the LPT optimization
/// criterion of §6.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCost {
    pub r: u64,
    pub s: u64,
}

impl CellCost {
    /// Worst-case comparisons for the partition: `r · s`.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.r * self.s
    }
}

/// Runs the adaptive assignment over both point collections and returns the
/// per-cell `(r, s)` tallies (dense, indexed by [`asj_grid::Grid::cell_index`]).
///
/// Used to reproduce Table 1, to estimate per-cell costs from samples for the
/// LPT scheduler, and in tests as a replication-count oracle.
pub fn cell_costs<'a, IR, IS>(graph: &AgreementGraph, r: IR, s: IS) -> Vec<CellCost>
where
    IR: IntoIterator<Item = &'a Point>,
    IS: IntoIterator<Item = &'a Point>,
{
    let mut costs = vec![CellCost::default(); graph.grid().num_cells()];
    let mut cells: Vec<CellCoord> = Vec::with_capacity(4);
    for &p in r {
        graph.assign(p, SetLabel::R, &mut cells);
        for c in &cells {
            costs[graph.grid().cell_index(*c)].r += 1;
        }
    }
    for &p in s {
        graph.assign(p, SetLabel::S, &mut cells);
        for c in &cells {
            costs[graph.grid().cell_index(*c)].s += 1;
        }
    }
    costs
}

/// A sample-driven *theoretical cost model* for the join (listed as future
/// work in §8 of the paper): predicts the number of candidate pairs the
/// partition-local nested-loop join will evaluate, by running the adaptive
/// assignment over the sampled points and extrapolating each cell's `r·s`
/// product by the sampling rates.
///
/// With sampling fractions `φ_r`, `φ_s`, a cell that holds `r̂` sampled R
/// points (natives + replicas) and `ŝ` sampled S points is predicted to cost
/// `(r̂/φ_r)·(ŝ/φ_s)` comparisons.
pub fn estimate_candidates<'a, IR, IS>(
    graph: &AgreementGraph,
    sample_r: IR,
    sample_s: IS,
    fraction_r: f64,
    fraction_s: f64,
) -> f64
where
    IR: IntoIterator<Item = &'a Point>,
    IS: IntoIterator<Item = &'a Point>,
{
    assert!(
        fraction_r > 0.0 && fraction_s > 0.0,
        "sampling fractions must be positive"
    );
    let costs = cell_costs(graph, sample_r, sample_s);
    costs
        .iter()
        .map(|c| (c.r as f64 / fraction_r) * (c.s as f64 / fraction_s))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgreementPolicy, GridSample};
    use asj_geom::Rect;
    use asj_grid::{Grid, GridSpec};

    #[test]
    fn estimate_scales_by_sampling_fraction() {
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
        let graph = AgreementGraph::build(&g, &GridSample::new(&g), AgreementPolicy::UniformR);
        let r = [Point::new(3.75, 3.75), Point::new(3.8, 3.8)];
        let s = [Point::new(3.7, 3.7)];
        // Full sample: exactly 2 * 1 = 2 candidates in cell (1,1).
        let full = estimate_candidates(&graph, r.iter(), s.iter(), 1.0, 1.0);
        assert_eq!(full, 2.0);
        // Treating the same points as a 50% / 25% sample quadruples /
        // doubles the extrapolated populations.
        let scaled = estimate_candidates(&graph, r.iter(), s.iter(), 0.5, 0.25);
        assert_eq!(scaled, (2.0 / 0.5) * (1.0 / 0.25));
    }

    #[test]
    fn auto_kernel_choice_follows_regimes() {
        let m = KernelCostModel::default();
        // Tiny groups: nested loop, no matter the extent.
        assert_eq!(m.choose(1, 2, 0.1, 100.0, 100.0), KernelKind::NestedLoop);
        assert_eq!(m.choose(0, 50, 0.1, 100.0, 100.0), KernelKind::NestedLoop);
        // Group inside an eps x eps box: every pair passes the window, so
        // nested loop wins (no setup cost).
        assert_eq!(m.choose(30, 30, 1.0, 0.5, 0.5), KernelKind::NestedLoop);
        // Mid-sized cell (~2 eps): the prefiltering kernels take over.
        let mid = m.choose(50, 50, 1.0, 2.0, 2.0);
        assert_ne!(mid, KernelKind::NestedLoop);
        // Extent much larger than eps with many points: bucket grid wins
        // (it prunes in both axes, the sweep only in x).
        assert_eq!(
            m.choose(4000, 4000, 0.1, 50.0, 50.0),
            KernelKind::GridBucket
        );
        // Same huge extent, few points: sweep's cheaper setup wins.
        assert_eq!(m.choose(8, 8, 0.1, 50.0, 50.0), KernelKind::PlaneSweep);
    }

    #[test]
    fn lpt_weight_tracks_resolved_kernel() {
        let m = KernelCostModel::default();
        assert_eq!(m.lpt_weight(LocalKernel::Auto, 0, 10, 1.0, 2.0, 2.0), 0);
        let nl = m.lpt_weight(LocalKernel::NestedLoop, 100, 100, 1.0, 20.0, 20.0);
        let auto = m.lpt_weight(LocalKernel::Auto, 100, 100, 1.0, 20.0, 20.0);
        // On a wide sparse cell the resolved kernel must predict cheaper
        // than the forced nested loop.
        assert!(auto < nl, "auto {auto} vs nested-loop {nl}");
        assert!(auto >= 1);
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in [
            LocalKernel::NestedLoop,
            LocalKernel::PlaneSweep,
            LocalKernel::GridBucket,
            LocalKernel::Auto,
        ] {
            assert_eq!(k.name().parse::<LocalKernel>(), Ok(k));
        }
        assert!("quantum".parse::<LocalKernel>().is_err());
        assert_eq!(LocalKernel::default(), LocalKernel::Auto);
    }

    #[test]
    fn costs_count_natives_and_replicas() {
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
        let graph = AgreementGraph::build(&g, &GridSample::new(&g), AgreementPolicy::UniformR);
        // One R point near the corner (replicated to 3 extra cells), one S
        // point in the middle of cell (1,1).
        let r = [Point::new(2.4, 2.4)];
        let s = [Point::new(3.75, 3.75)];
        let costs = cell_costs(&graph, r.iter(), s.iter());
        let total_r: u64 = costs.iter().map(|c| c.r).sum();
        let total_s: u64 = costs.iter().map(|c| c.s).sum();
        assert_eq!(total_r, 4); // native + 3 replicas
        assert_eq!(total_s, 1);
        let ci = g.cell_index(asj_grid::CellCoord { x: 1, y: 1 });
        assert_eq!(costs[ci], CellCost { r: 1, s: 1 });
        assert_eq!(costs[ci].cost(), 1);
    }
}
