use crate::{AgreementGraph, SetLabel};
use asj_geom::Point;
use asj_grid::CellCoord;

/// Estimated workload of one grid cell: the number of points of each dataset
/// assigned to it (natives plus replicas). The worst-case join cost of the
/// cell is the product `r · s` — the candidate pairs examined by the
/// partition-local join (Table 1 of the paper, and the LPT optimization
/// criterion of §6.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCost {
    pub r: u64,
    pub s: u64,
}

impl CellCost {
    /// Worst-case comparisons for the partition: `r · s`.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.r * self.s
    }
}

/// Runs the adaptive assignment over both point collections and returns the
/// per-cell `(r, s)` tallies (dense, indexed by [`asj_grid::Grid::cell_index`]).
///
/// Used to reproduce Table 1, to estimate per-cell costs from samples for the
/// LPT scheduler, and in tests as a replication-count oracle.
pub fn cell_costs<'a, IR, IS>(graph: &AgreementGraph, r: IR, s: IS) -> Vec<CellCost>
where
    IR: IntoIterator<Item = &'a Point>,
    IS: IntoIterator<Item = &'a Point>,
{
    let mut costs = vec![CellCost::default(); graph.grid().num_cells()];
    let mut cells: Vec<CellCoord> = Vec::with_capacity(4);
    for &p in r {
        graph.assign(p, SetLabel::R, &mut cells);
        for c in &cells {
            costs[graph.grid().cell_index(*c)].r += 1;
        }
    }
    for &p in s {
        graph.assign(p, SetLabel::S, &mut cells);
        for c in &cells {
            costs[graph.grid().cell_index(*c)].s += 1;
        }
    }
    costs
}

/// A sample-driven *theoretical cost model* for the join (listed as future
/// work in §8 of the paper): predicts the number of candidate pairs the
/// partition-local nested-loop join will evaluate, by running the adaptive
/// assignment over the sampled points and extrapolating each cell's `r·s`
/// product by the sampling rates.
///
/// With sampling fractions `φ_r`, `φ_s`, a cell that holds `r̂` sampled R
/// points (natives + replicas) and `ŝ` sampled S points is predicted to cost
/// `(r̂/φ_r)·(ŝ/φ_s)` comparisons.
pub fn estimate_candidates<'a, IR, IS>(
    graph: &AgreementGraph,
    sample_r: IR,
    sample_s: IS,
    fraction_r: f64,
    fraction_s: f64,
) -> f64
where
    IR: IntoIterator<Item = &'a Point>,
    IS: IntoIterator<Item = &'a Point>,
{
    assert!(
        fraction_r > 0.0 && fraction_s > 0.0,
        "sampling fractions must be positive"
    );
    let costs = cell_costs(graph, sample_r, sample_s);
    costs
        .iter()
        .map(|c| (c.r as f64 / fraction_r) * (c.s as f64 / fraction_s))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgreementPolicy, GridSample};
    use asj_geom::Rect;
    use asj_grid::{Grid, GridSpec};

    #[test]
    fn estimate_scales_by_sampling_fraction() {
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
        let graph = AgreementGraph::build(&g, &GridSample::new(&g), AgreementPolicy::UniformR);
        let r = [Point::new(3.75, 3.75), Point::new(3.8, 3.8)];
        let s = [Point::new(3.7, 3.7)];
        // Full sample: exactly 2 * 1 = 2 candidates in cell (1,1).
        let full = estimate_candidates(&graph, r.iter(), s.iter(), 1.0, 1.0);
        assert_eq!(full, 2.0);
        // Treating the same points as a 50% / 25% sample quadruples /
        // doubles the extrapolated populations.
        let scaled = estimate_candidates(&graph, r.iter(), s.iter(), 0.5, 0.25);
        assert_eq!(scaled, (2.0 / 0.5) * (1.0 / 0.25));
    }

    #[test]
    fn costs_count_natives_and_replicas() {
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
        let graph = AgreementGraph::build(&g, &GridSample::new(&g), AgreementPolicy::UniformR);
        // One R point near the corner (replicated to 3 extra cells), one S
        // point in the middle of cell (1,1).
        let r = [Point::new(2.4, 2.4)];
        let s = [Point::new(3.75, 3.75)];
        let costs = cell_costs(&graph, r.iter(), s.iter());
        let total_r: u64 = costs.iter().map(|c| c.r).sum();
        let total_s: u64 = costs.iter().map(|c| c.s).sum();
        assert_eq!(total_r, 4); // native + 3 replicas
        assert_eq!(total_s, 1);
        let ci = g.cell_index(asj_grid::CellCoord { x: 1, y: 1 });
        assert_eq!(costs[ci], CellCost { r: 1, s: 1 });
        assert_eq!(costs[ci].cost(), 1);
    }
}
