use crate::{AgreementGraph, Dir8, GridSample};
use asj_grid::{Quadrant, QuartetId};

/// Algorithm 1 of the paper: *Duplicate-free Graph Generation*.
///
/// For every quartet subgraph, edges are visited in the prescribed order —
/// first the edges whose cells share only the reference point (diagonals),
/// then the side edges, each group in descending weight — and an unlocked
/// edge `e_ij` is **marked** when some triangle `{i, j, k}` satisfies
///
/// * `τ(e_ik) = τ(e_ij)` and `τ(e_jk) ≠ τ(e_ij)` (vertex `i` replicates the
///   same dataset to both `j` and `k`, the duplicate hazard of Lemma 4.8),
/// * neither `e_jk` nor `e_ik` is already marked.
///
/// Marking `e_ij` **locks** `e_ik` and `e_jk` (the edges into the meeting
/// cell `k`), so later iterations cannot sever the cell where the excluded
/// duplicate-prone points will meet their partners. When both triangles of an
/// edge qualify, the one whose to-be-locked edges have the larger weight sum
/// wins (§5.2).
///
/// The edge *weight* `w(i→j)` estimates the comparisons induced by the
/// replication: sampled replication candidates of the agreement's dataset in
/// `i` toward `j`, times sampled points of the other dataset in `j`
/// (Example 4.4).
pub fn build_duplicate_free(graph: &mut AgreementGraph, sample: &GridSample) {
    build_duplicate_free_with_order(graph, sample, EdgeOrder::DiagonalFirst);
}

/// The order in which Algorithm 1 visits a subgraph's edges.
///
/// The paper argues for visiting the diagonal edges (cells sharing only the
/// reference point) first: marking them never creates supplementary areas
/// (Corollary 4.9), so prioritizing them avoids the extra replication that
/// side-edge markings can induce. [`EdgeOrder::WeightOnly`] is the naive
/// strictly-descending-weight order, kept for the ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOrder {
    /// Diagonal edges first, then side edges; descending weight within each
    /// group (the paper's order, §5.2).
    DiagonalFirst,
    /// Descending weight across all 12 edges.
    WeightOnly,
}

/// [`build_duplicate_free`] with an explicit edge-visit order (ablation A2).
pub fn build_duplicate_free_with_order(
    graph: &mut AgreementGraph,
    sample: &GridSample,
    order: EdgeOrder,
) {
    let quartets: Vec<QuartetId> = graph.grid().quartets().collect();
    for q in quartets {
        process_quartet(graph, sample, q, order);
    }
}

/// Weight of the directed edge `from → to` in quartet `q` (Example 4.4).
pub(crate) fn edge_weight(
    graph: &AgreementGraph,
    sample: &GridSample,
    q: QuartetId,
    from: Quadrant,
    to: Quadrant,
) -> u64 {
    let grid = graph.grid();
    let cf = graph.quartet_cell(q, from);
    let ct = graph.quartet_cell(q, to);
    let tau = graph.pair_type(cf, ct);
    let replicated = sample.border_count(grid.cell_index(cf), Dir8::between(cf, ct), tau);
    let partners = sample.total(grid.cell_index(ct), tau.other());
    replicated * partners
}

fn process_quartet(
    graph: &mut AgreementGraph,
    sample: &GridSample,
    q: QuartetId,
    order: EdgeOrder,
) {
    // The 12 directed edges of the subgraph, ordered per `order`; index
    // order as the final deterministic tie-break.
    let mut edges: Vec<(bool, u64, Quadrant, Quadrant)> = Vec::with_capacity(12);
    for from in Quadrant::ALL {
        for to in [from.horizontal(), from.vertical(), from.diagonal()] {
            let is_side = from.side_adjacent(to);
            let w = edge_weight(graph, sample, q, from, to);
            edges.push((is_side, w, from, to));
        }
    }
    edges.sort_by(|a, b| {
        let group = match order {
            // Diagonals (false) before sides (true).
            EdgeOrder::DiagonalFirst => a.0.cmp(&b.0),
            EdgeOrder::WeightOnly => std::cmp::Ordering::Equal,
        };
        group
            .then(b.1.cmp(&a.1)) // descending weight
            .then((a.2.index(), a.3.index()).cmp(&(b.2.index(), b.3.index())))
    });

    for &(_, _, i, j) in &edges {
        if graph.edge_state(q, i, j).locked {
            continue;
        }
        let tau = graph.edge_type(q, i, j);
        // The two triangles containing edge (i, j).
        let mut best: Option<(u64, Quadrant)> = None;
        for k in Quadrant::ALL {
            if k == i || k == j {
                continue;
            }
            if graph.edge_type(q, i, k) != tau || graph.edge_type(q, j, k) == tau {
                continue;
            }
            if graph.is_marked(q, j, k) || graph.is_marked(q, i, k) {
                continue;
            }
            let w = edge_weight(graph, sample, q, j, k) + edge_weight(graph, sample, q, i, k);
            // Prefer the triangle whose locked edges weigh more; ties go to
            // the lower quadrant index for determinism.
            let better = match best {
                None => true,
                Some((bw, bk)) => w > bw || (w == bw && k.index() < bk.index()),
            };
            if better {
                best = Some((w, k));
            }
        }
        if let Some((_, k)) = best {
            graph.mark(q, i, j);
            graph.lock(q, j, k);
            graph.lock(q, i, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgreementPolicy, SetLabel};
    use asj_geom::Rect;
    use asj_grid::{CellCoord, Grid, GridSpec};

    fn quartet_grid() -> Grid {
        // Exactly one quartet: 2×2 cells of side 2.5, ε = 1.
        Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 5.0, 5.0), 1.0))
    }

    #[test]
    fn uniform_graph_marks_nothing() {
        let g = quartet_grid();
        let sample = GridSample::new(&g);
        let graph = AgreementGraph::build(&g, &sample, AgreementPolicy::UniformR);
        assert_eq!(graph.marked_edge_count(), 0);
        assert_eq!(graph.locked_edge_count(), 0);
    }

    /// The Figure-4 instance: cell C replicates S to both A and B while A–B
    /// exchanges R — a triangle with both agreement types must get a marked
    /// edge, and the other two edges of that triangle must be locked.
    #[test]
    fn mixed_triangle_gets_marked_and_locked() {
        let g = quartet_grid();
        let sample = GridSample::new(&g);
        // C = SW, A = NE (diagonal from C), B = SE. Types: C–A = S, C–B = S,
        // A–B = R; everything else R.
        let c = CellCoord { x: 0, y: 0 };
        let a = CellCoord { x: 1, y: 1 };
        let b = CellCoord { x: 1, y: 0 };
        let mut graph = AgreementGraph::from_pair_types(&g, |u, v| {
            let pair = |p: CellCoord, r: CellCoord| (u == p && v == r) || (u == r && v == p);
            if pair(c, a) || pair(c, b) {
                SetLabel::S
            } else {
                SetLabel::R
            }
        });
        build_duplicate_free(&mut graph, &sample);
        let q = QuartetId { x: 1, y: 1 };
        // One of e(C→A), e(C→B) must be marked (the two candidates of
        // §4.5.1); its triangle partners must be locked.
        let ca = graph.edge_state(q, Quadrant::Sw, Quadrant::Ne).marked;
        let cb = graph.edge_state(q, Quadrant::Sw, Quadrant::Se).marked;
        assert!(
            ca ^ cb,
            "exactly one candidate edge must be marked: ca={ca} cb={cb}"
        );
        assert!(graph.marked_edge_count() >= 1);
        assert!(graph.locked_edge_count() >= 2);
        if ca {
            // Marked C→A in triangle {C, A, B}: locks A→B and C→B.
            assert!(graph.edge_state(q, Quadrant::Ne, Quadrant::Se).locked);
            assert!(graph.edge_state(q, Quadrant::Sw, Quadrant::Se).locked);
        }
    }

    #[test]
    fn diagonal_edges_processed_before_side_edges() {
        // With zero weights everywhere, ordering falls back to the
        // diagonal-first rule; verify via a configuration where marking a
        // diagonal edge is possible and side candidates exist too.
        let g = quartet_grid();
        let sample = GridSample::new(&g);
        // SW–NE = R, SW–SE = R, everything else S: triangle {SW, NE, SE} has
        // tail SW with two R edges and a mixed third edge (NE–SE = S).
        let mut graph = AgreementGraph::from_pair_types(&g, |u, v| {
            let sw = CellCoord { x: 0, y: 0 };
            let ne = CellCoord { x: 1, y: 1 };
            let se = CellCoord { x: 1, y: 0 };
            let pair = |p: CellCoord, r: CellCoord| (u == p && v == r) || (u == r && v == p);
            if pair(sw, ne) || pair(sw, se) {
                SetLabel::R
            } else {
                SetLabel::S
            }
        });
        build_duplicate_free(&mut graph, &sample);
        let q = QuartetId { x: 1, y: 1 };
        // The diagonal candidate SW→NE is visited first and must be marked.
        assert!(graph.edge_state(q, Quadrant::Sw, Quadrant::Ne).marked);
    }

    #[test]
    fn locked_edges_are_never_marked() {
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 12.5, 12.5), 1.0));
        let sample = GridSample::new(&g);
        // Pseudo-random mixed types over a 5×5 grid.
        let mut graph = AgreementGraph::from_pair_types(&g, |u, v| {
            if (u.x.wrapping_mul(31) ^ u.y.wrapping_mul(17) ^ v.x.wrapping_mul(7) ^ v.y) % 3 == 0 {
                SetLabel::R
            } else {
                SetLabel::S
            }
        });
        build_duplicate_free(&mut graph, &sample);
        for q in g.quartets() {
            for from in Quadrant::ALL {
                for to in [from.horizontal(), from.vertical(), from.diagonal()] {
                    let st = graph.edge_state(q, from, to);
                    assert!(
                        !(st.marked && st.locked),
                        "edge both marked and locked at {q:?}"
                    );
                }
            }
        }
    }

    /// After Algorithm 1, every mixed triangle must contain a marked edge
    /// with the hazard orientation resolved: for every vertex `i` that sends
    /// the same dataset to both other vertices of a mixed triangle, one of
    /// its two outgoing edges is marked.
    #[test]
    fn mixed_triangles_resolved_on_random_grids() {
        for seed in 0..20u32 {
            let g = quartet_grid();
            let sample = GridSample::new(&g);
            let mut graph = AgreementGraph::from_pair_types(&g, |u, v| {
                let h = seed
                    .wrapping_mul(0x9E37)
                    .wrapping_add(u.x * 64 + u.y * 16 + v.x * 4 + v.y)
                    .wrapping_mul(0x85EB_CA6B);
                if h & 4 == 0 {
                    SetLabel::R
                } else {
                    SetLabel::S
                }
            });
            build_duplicate_free(&mut graph, &sample);
            let q = QuartetId { x: 1, y: 1 };
            for i in Quadrant::ALL {
                for j in Quadrant::ALL {
                    for k in Quadrant::ALL {
                        if i == j || j == k || i == k {
                            continue;
                        }
                        let tau = graph.edge_type(q, i, j);
                        if graph.edge_type(q, i, k) == tau && graph.edge_type(q, j, k) != tau {
                            // Hazard: i replicates τ to both j and k.
                            let m_ij = graph.is_marked(q, i, j);
                            let m_ik = graph.is_marked(q, i, k);
                            assert!(
                                m_ij || m_ik,
                                "unresolved hazard seed={seed} i={i:?} j={j:?} k={k:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod example_5_1 {
    use super::*;
    use crate::{AgreementGraph, GridSample, SetLabel};
    use asj_geom::{Point, Rect};
    use asj_grid::{CellCoord, Grid, GridSpec, Quadrant, QuartetId};

    /// Example 5.1 / Figure 8 of the paper: a quartet instance where
    /// Algorithm 1 marks e(B→D), e(C→A) and e(C→D) and locks e(B→A),
    /// e(D→A), e(C→B), e(A→B) and e(D→B).
    ///
    /// Layout (diagonals A–C and B–D as in the figure): A = NW, B = NE,
    /// C = SE, D = SW. Agreement types: A–B = R, B–D = R, everything else S.
    /// The sampled points below induce edge weights that reproduce the
    /// example's traversal order: diagonals AC(8) ≥ BD(8) ≥ CA(5) ≥ DB(1),
    /// then sides CB(20) ≥ BA(16) ≥ CD(15) ≥ rest.
    #[test]
    fn figure8_marking_sequence() {
        let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 5.0, 5.0), 1.0));
        let a = CellCoord { x: 0, y: 1 }; // NW
        let b = CellCoord { x: 1, y: 1 }; // NE
        let _c = CellCoord { x: 1, y: 0 }; // SE (only diagonals A-C, B-D named below)
        let d = CellCoord { x: 0, y: 0 }; // SW
        let mut sample = GridSample::new(&grid);
        let fill = |s: &mut GridSample, label, p: Point, n: usize| {
            for _ in 0..n {
                s.add(&grid, label, p);
            }
        };
        // Corner-square points (within eps of all three neighbors).
        fill(&mut sample, SetLabel::R, Point::new(2.3, 2.7), 1); // A
        fill(&mut sample, SetLabel::S, Point::new(2.3, 2.7), 4);
        fill(&mut sample, SetLabel::R, Point::new(2.7, 2.7), 4); // B
        fill(&mut sample, SetLabel::S, Point::new(2.7, 2.7), 1);
        fill(&mut sample, SetLabel::S, Point::new(2.7, 2.3), 5); // C
        fill(&mut sample, SetLabel::R, Point::new(2.3, 2.3), 1); // D
        fill(&mut sample, SetLabel::S, Point::new(2.3, 2.3), 1);
        // Interior points (no replication, only cell totals).
        fill(&mut sample, SetLabel::R, Point::new(4.0, 1.0), 2); // C
        fill(&mut sample, SetLabel::R, Point::new(1.0, 1.0), 2); // D
        fill(&mut sample, SetLabel::S, Point::new(1.0, 1.0), 1); // D

        let mut graph = AgreementGraph::from_pair_types(&grid, |u, v| {
            let pair = |p: CellCoord, q: CellCoord| (u == p && v == q) || (u == q && v == p);
            if pair(a, b) || pair(b, d) {
                SetLabel::R
            } else {
                SetLabel::S
            }
        });
        build_duplicate_free(&mut graph, &sample);

        let q = QuartetId { x: 1, y: 1 };
        let marked = |from, to| graph.edge_state(q, from, to).marked;
        let locked = |from, to| graph.edge_state(q, from, to).locked;
        use Quadrant::{Ne, Nw, Se, Sw};
        // Markings of Figure 8b.
        assert!(marked(Ne, Sw), "e(B->D) must be marked");
        assert!(marked(Se, Nw), "e(C->A) must be marked");
        assert!(marked(Se, Sw), "e(C->D) must be marked");
        assert_eq!(graph.marked_edge_count(), 3, "exactly the three markings");
        // Locks of Figure 8b.
        assert!(locked(Ne, Nw), "e(B->A) locked");
        assert!(locked(Sw, Nw), "e(D->A) locked");
        assert!(locked(Se, Ne), "e(C->B) locked");
        assert!(locked(Nw, Ne), "e(A->B) locked");
        assert!(locked(Sw, Ne), "e(D->B) locked");
        // The result is hazard-free.
        assert_eq!(graph.validate().unresolved_hazards, 0);
    }
}
