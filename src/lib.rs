//! # adaptive-spatial-join
//!
//! A parallel ε-distance spatial-join library with **adaptive replication**,
//! reproducing the EDBT 2025 paper *"Parallel Spatial Join Processing with
//! Adaptive Replication"* (Koutroumanis, Doulkeridis, Vlachou).
//!
//! Instead of universally replicating one of the two datasets across grid-cell
//! borders (as PBSM and its descendants do), neighboring cells form local
//! *agreements* about which dataset to replicate, minimizing replication on
//! skewed data while a marking/locking discipline on the *graph of agreements*
//! keeps the join correct and duplicate-free.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`geom`] — points, rectangles, MINDIST.
//! * [`grid`] — the regular grid, quartets and replication-area classification.
//! * [`core`] — the graph of agreements, LPiB/DIFF instantiation,
//!   Algorithm 1 (marking + locking) and Algorithms 2–4 (point assignment).
//! * [`engine`] — the data-parallel substrate (datasets, shuffle with byte
//!   metering, LPT/hash scheduling, metrics) standing in for Apache Spark.
//! * [`index`] — R-tree, quadtree partitioner and local join kernels.
//! * [`data`] — synthetic workload generators matching the paper's datasets.
//! * [`join`] — end-to-end distributed join algorithms: adaptive (LPiB/DIFF),
//!   PBSM UNI(R)/UNI(S), ε-grid, and a Sedona-like baseline.
//! * [`serve`] — the multi-tenant job-server front end: tenant queue files,
//!   working-set admission estimates, fair-share runs and isolation oracles.
//!
//! ## Quick start
//!
//! ```
//! use adaptive_spatial_join::prelude::*;
//!
//! // Two tiny point sets in a shared bounding box.
//! let bbox = Rect::new(0.0, 0.0, 10.0, 10.0);
//! let r: Vec<Point> = vec![Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
//! let s: Vec<Point> = vec![Point::new(1.2, 1.1), Point::new(9.0, 9.0)];
//!
//! let cluster = Cluster::new(ClusterConfig::new(4));
//! let spec = JoinSpec::new(bbox, 0.5);
//! let out = adaptive_join(&cluster, &spec, AgreementPolicy::Lpib,
//!                         to_records(&r, 0), to_records(&s, 0));
//! assert_eq!(out.pairs.len(), 1); // only (1,1)-(1.2,1.1) is within ε=0.5
//! ```

pub use asj_core as core;
pub use asj_data as data;
pub use asj_engine as engine;
pub use asj_engine::obs;
pub use asj_geom as geom;
pub use asj_grid as grid;
pub use asj_index as index;
pub use asj_join as join;
pub use asj_serve as serve;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use asj_core::{AgreementGraph, AgreementPolicy, GridSample};
    pub use asj_data::{Catalog, DatasetSpec, TupleSizeFactor};
    pub use asj_engine::{
        BufferPool, Cluster, ClusterConfig, ExecStats, FaultPlan, JobError, JobMetrics, Placement,
        Recorder, RetryPolicy, ShuffleMode, Trace, TraceFormat,
    };
    pub use asj_geom::{Point, Rect};
    pub use asj_grid::{Grid, GridSpec};
    pub use asj_join::{
        adaptive_join, eps_grid_join, extent_join, knn_join, pbsm_join, pbsm_refpoint_join,
        sedona_like_join, self_join, to_records, Algorithm, ExtentRecord, JoinOutput, JoinSpec,
        LocalKernel, PartitionedPoints, ReplicateSide,
    };
}
