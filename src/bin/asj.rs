//! `asj` — command-line front end for the adaptive-replication spatial join.
//!
//! ```text
//! asj generate --kind gaussian --n 100000 --seed 7 --out points.csv
//! asj join      --r r.csv --s s.csv --eps 0.25 [--algo lpib] [--nodes 12]
//!               [--partitions 96] [--out pairs.csv]
//! asj self-join --input points.csv --eps 0.25
//! ```
//!
//! Input/output files use the paper's raw text format: `id,x,y` per line.

use adaptive_spatial_join::data::{
    read_points_csv, write_points_csv, DatasetSpec, GenKind, PAPER_BBOX,
};
use adaptive_spatial_join::engine::{clean_orphaned_spills, set_spill_dir, Journal, SchedPolicy};
use adaptive_spatial_join::geom::{Point, Rect};
use adaptive_spatial_join::join::{
    knn_join, self_join, Algorithm, JoinOutput, JoinSpec, LocalKernel, PartitionedPoints, Record,
};
use adaptive_spatial_join::prelude::*;
use adaptive_spatial_join::serve::{
    parse_queue, run_queue_recoverable, solo_outcome, RecoveryOptions,
};
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  asj generate  --kind gaussian|hydrography|parks|uniform --n N --out FILE
                [--seed S]
  asj join      --r FILE --s FILE --eps E [--algo ALGO] [--nodes N]
                [--partitions P] [--grid-factor F] [--kernel K] [--out FILE]
                [--trace FILE] [--trace-format chrome|jsonl]
                [--faults SPEC] [--seed S] [--max-attempts N] [--speculation]
                [--memory-budget B]
  asj self-join --input FILE --eps E [--nodes N] [--partitions P] [--kernel K]
                [--trace FILE] [--trace-format chrome|jsonl]
                [--faults SPEC] [--seed S] [--max-attempts N] [--speculation]
                [--memory-budget B]
  asj knn       --r FILE --s FILE --k K --eps E [--nodes N] [--partitions P]
  asj range     --input FILE --rect x0,y0,x1,y1 --eps E [--nodes N]
  asj heatmap   --input FILE [--width W] [--height H]
  asj serve     --jobs FILE [--policy fair-share|fifo] [--nodes N]
                [--memory-budget B] [--verify]
                [--journal FILE] [--checkpoint-dir DIR] [--recover]
                [--compact-every N]
                [--trace FILE] [--trace-format chrome|jsonl]
  asj journal   compact FILE

Every command accepts --spill-dir DIR (or ASJ_SPILL_DIR) to route spill and
checkpoint segments somewhere other than the system temp dir; orphaned spill
files from a previous crashed run are cleaned up at startup.

ALGO: lpib (default) | diff | uni-r | uni-s | eps-grid | sedona
K:    auto (default) | nested-loop | plane-sweep | grid-bucket — the
      partition-local join kernel; auto picks per cell group from the
      calibrated cost model.
--trace records a dual-clock execution trace; the chrome format opens in
Perfetto (https://ui.perfetto.dev) or chrome://tracing.
--faults injects deterministic failures, e.g. 'chaos' or
'p=0.02,slow:1=3.0,lose:2@5' (seeded by --seed); the env vars ASJ_FAULTS /
ASJ_FAULT_SEED do the same without flags. --speculation re-executes
straggler tasks on another node. --memory-budget caps simulated per-node
memory (bytes; k/m/g binary suffixes accepted) — shuffle buckets that would
exceed it spill to temporary files and are re-read at reduce time, leaving
results byte-identical.
--jobs runs a multi-tenant queue on one simulated cluster: one
'job NAME key=value ...' per line ('#' comments; keys: algo eps n kind seed
weight kernel partitions grid-factor payload faults fault-seed max-attempts
estimate). Admission control rejects tenants whose estimated working set
exceeds the per-node --memory-budget; admitted tenants interleave under the
--policy with isolated fault, pool and obs state. --verify re-runs every
tenant solo and fails unless results are byte-identical.

--journal FILE appends a crash-consistent record of every admission, grant
and completed job to FILE; --checkpoint-dir DIR persists each completed
shuffle and join stage so a restarted server can skip recomputation.
--recover replays FILE before running: journaled results are served without
re-execution and in-flight jobs resume from their checkpoints. A finished
job's checkpoints are garbage-collected once its result is durable in the
journal, and --compact-every N rewrites the journal down to live records
after every N completions, so long-lived servers keep bounded disk.
'asj journal compact FILE' runs the same compaction offline (atomic:
tmp file + fsync + rename).";

/// Flags that take no value: their presence means "on".
const BOOL_FLAGS: &[&str] = &["speculation", "verify", "recover"];

/// Parsed `--flag value` options after the subcommand. Flags listed in
/// [`BOOL_FLAGS`] are valueless switches recorded as `"true"`.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        if BOOL_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for --{key}"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required --{key}"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: '{s}'"))
}

/// Byte count with an optional binary suffix: `65536`, `64k`, `16m`, `1g`
/// (case-insensitive, powers of 1024).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let lower = s.trim().to_ascii_lowercase();
    let (digits, mult) = match lower.as_bytes().last() {
        Some(b'k') => (&lower[..lower.len() - 1], 1u64 << 10),
        Some(b'm') => (&lower[..lower.len() - 1], 1 << 20),
        Some(b'g') => (&lower[..lower.len() - 1], 1 << 30),
        _ => (lower.as_str(), 1),
    };
    let n: u64 = parse(digits, "--memory-budget")?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("memory budget overflows u64: '{s}'"))
}

fn algorithm_by_name(name: &str) -> Result<Algorithm, String> {
    Ok(match name {
        "lpib" => Algorithm::Lpib,
        "diff" => Algorithm::Diff,
        "uni-r" => Algorithm::UniR,
        "uni-s" => Algorithm::UniS,
        "eps-grid" => Algorithm::EpsGrid,
        "sedona" => Algorithm::Sedona,
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn gen_kind_by_name(name: &str) -> Result<GenKind, String> {
    Ok(match name {
        "gaussian" => GenKind::GaussianClusters,
        "hydrography" => GenKind::Hydrography,
        "parks" => GenKind::Parks,
        "uniform" => GenKind::Uniform,
        other => return Err(format!("unknown generator kind '{other}'")),
    })
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("no subcommand".into());
    };
    if cmd == "journal" {
        // Positional operands (`journal compact FILE`), not --flags.
        return cmd_journal(&args[1..]);
    }
    let flags = parse_flags(&args[1..])?;
    if let Some(dir) = flags.get("spill-dir") {
        set_spill_dir(PathBuf::from(dir));
        // A previous run that crashed mid-spill may have left segments behind;
        // the pid in every spill filename makes live files distinguishable.
        match clean_orphaned_spills(std::path::Path::new(dir)) {
            Ok(swept) if swept > 0 => {
                eprintln!("swept {swept} orphaned spill file(s) from {dir}");
            }
            Ok(_) => {}
            Err(e) => return Err(format!("cleaning spill dir {dir}: {e}")),
        }
    }
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "join" => cmd_join(&flags),
        "self-join" => cmd_self_join(&flags),
        "knn" => cmd_knn(&flags),
        "range" => cmd_range(&flags),
        "heatmap" => cmd_heatmap(&flags),
        "serve" => cmd_serve(&flags),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = gen_kind_by_name(required(flags, "kind")?)?;
    let n: usize = parse(required(flags, "n")?, "--n")?;
    let out = PathBuf::from(required(flags, "out")?);
    let seed: u64 = flags.get("seed").map_or(Ok(7), |s| parse(s, "--seed"))?;
    let spec = DatasetSpec {
        name: "cli",
        kind,
        cardinality: n,
        seed,
        bbox: PAPER_BBOX,
        sigma_scale: 1.0,
    };
    let points = spec.points();
    write_points_csv(&out, &points).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {} points to {}", points.len(), out.display());
    Ok(())
}

fn load_records(path: &str) -> Result<Vec<Record>, String> {
    let rows =
        read_points_csv(std::path::Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(rows.into_iter().map(|(id, p)| Record::new(id, p)).collect())
}

fn bbox_of(points: impl Iterator<Item = Point>) -> Rect {
    let mut bbox = Rect::empty();
    for p in points {
        bbox.extend(p);
    }
    bbox
}

/// Tracing requested on the command line: the recorder attached to the
/// cluster plus where to write the rendered trace when the job is done.
struct TraceSink {
    recorder: Recorder,
    path: Option<PathBuf>,
    format: TraceFormat,
}

impl TraceSink {
    fn from_flags(flags: &HashMap<String, String>, nodes: usize) -> Result<TraceSink, String> {
        let path = flags.get("trace").map(PathBuf::from);
        let format: TraceFormat = flags
            .get("trace-format")
            .map_or(Ok(TraceFormat::Chrome), |s| {
                s.parse().map_err(|e: String| e)
            })?;
        // Without --trace the recorder stays no-op: zero overhead, and the
        // join's outputs and metrics are bit-identical to an untraced run.
        let recorder = if path.is_some() {
            Recorder::for_nodes(nodes)
        } else {
            Recorder::noop()
        };
        Ok(TraceSink {
            recorder,
            path,
            format,
        })
    }

    fn write(&self) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let trace = self.recorder.snapshot();
        trace
            .write_to(path, self.format)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "wrote trace          : {} ({} spans, {} events)",
            path.display(),
            trace.spans.len(),
            trace.events.len()
        );
        Ok(())
    }
}

fn build_spec(
    flags: &HashMap<String, String>,
    bbox: Rect,
) -> Result<(Cluster, JoinSpec, TraceSink), String> {
    let eps: f64 = parse(required(flags, "eps")?, "--eps")?;
    if eps <= 0.0 {
        return Err("--eps must be positive".into());
    }
    let nodes: usize = flags.get("nodes").map_or(Ok(12), |s| parse(s, "--nodes"))?;
    let partitions: usize = flags
        .get("partitions")
        .map_or(Ok(96), |s| parse(s, "--partitions"))?;
    let factor: f64 = flags
        .get("grid-factor")
        .map_or(Ok(2.0), |s| parse(s, "--grid-factor"))?;
    let kernel: LocalKernel = flags
        .get("kernel")
        .map_or(Ok(LocalKernel::Auto), |s| s.parse())?;
    let trace = TraceSink::from_flags(flags, nodes)?;
    let mut cluster = Cluster::new(ClusterConfig::new(nodes)).with_recorder(trace.recorder.clone());
    if let Some(budget) = flags.get("memory-budget") {
        cluster = cluster.with_memory_budget(parse_bytes(budget)?);
    }
    if let Some((plan, policy)) = fault_setup(flags)? {
        cluster = cluster.with_fault_policy(plan, policy);
    }
    // Pad the observed bbox so border points still get full neighborhoods.
    let spec = JoinSpec::new(bbox.expand(eps), eps)
        .with_partitions(partitions)
        .with_grid_factor(factor)
        .with_kernel(kernel);
    Ok((cluster, spec, trace))
}

/// Fault plan and retry policy requested by `--faults` / `--seed` /
/// `--max-attempts` / `--speculation`, falling back to the `ASJ_FAULTS` /
/// `ASJ_FAULT_SEED` environment variables. `None` leaves the cluster on the
/// zero-overhead fault-free path.
fn fault_setup(
    flags: &HashMap<String, String>,
) -> Result<Option<(FaultPlan, RetryPolicy)>, String> {
    let seed: u64 = flags.get("seed").map_or(Ok(7), |s| parse(s, "--seed"))?;
    let plan = match flags.get("faults") {
        Some(spec) => Some(FaultPlan::parse(spec, seed)?),
        None => FaultPlan::from_env(),
    };
    let mut policy = RetryPolicy::default();
    if let Some(n) = flags.get("max-attempts") {
        policy = policy.with_max_attempts(parse(n, "--max-attempts")?);
    }
    if flags.contains_key("speculation") {
        policy = policy.with_speculation(true);
    }
    let policy_requested = flags.contains_key("max-attempts") || flags.contains_key("speculation");
    match plan {
        Some(plan) => Ok(Some((plan, policy))),
        // A policy without a plan still routes stages through the recovering
        // executor (e.g. --speculation on a fault-free run).
        None if policy_requested => Ok(Some((FaultPlan::none(), policy))),
        None => Ok(None),
    }
}

fn report(out: &JoinOutput) {
    println!("algorithm            : {}", out.algorithm);
    println!("result pairs         : {}", out.result_count);
    println!("candidates evaluated : {}", out.candidates);
    println!(
        "replicated objects   : {} (R: {}, S: {})",
        out.replicated_total(),
        out.replicated[0],
        out.replicated[1]
    );
    println!(
        "shuffle remote reads : {} KiB",
        out.metrics.shuffle.remote_bytes / 1024
    );
    println!(
        "shuffle total        : {} KiB",
        out.metrics.shuffle.total_bytes() / 1024
    );
    println!(
        "peak partition       : {} KiB",
        out.metrics.shuffle.peak_partition_bytes() / 1024
    );
    println!(
        "simulated time       : {:.3} s",
        out.metrics.simulated_time().as_secs_f64()
    );
    println!(
        "wall time            : {:.3} s",
        out.metrics.wall_time().as_secs_f64()
    );
    println!(
        "peak memory          : {} KiB",
        out.metrics.peak_memory_bytes() / 1024
    );
    // Only interesting when the memory governor actually forced data to disk.
    if out.metrics.spilled_bytes() > 0 {
        println!(
            "spilled to disk      : {} KiB",
            out.metrics.spilled_bytes() / 1024
        );
    }
    let mut exec = ExecStats::default();
    exec.accumulate(&out.metrics.construction);
    exec.accumulate(&out.metrics.join);
    // Only interesting when something actually went wrong (or was recovered).
    if exec.retries + exec.failed_attempts + exec.speculative_wins + exec.blacklisted_nodes > 0 {
        println!(
            "task attempts        : {} ({} retries, {} failed)",
            exec.attempts, exec.retries, exec.failed_attempts
        );
        println!(
            "fault recovery       : {} speculative wins, {} blacklisted nodes",
            exec.speculative_wins, exec.blacklisted_nodes
        );
    }
}

fn write_pairs(path: &str, pairs: &[(u64, u64)]) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    for (a, b) in pairs {
        writeln!(w, "{a},{b}").map_err(|e| format!("writing {path}: {e}"))?;
    }
    w.flush().map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote {} pairs to {path}", pairs.len());
    Ok(())
}

fn cmd_join(flags: &HashMap<String, String>) -> Result<(), String> {
    let r = load_records(required(flags, "r")?)?;
    let s = load_records(required(flags, "s")?)?;
    let algo = algorithm_by_name(flags.get("algo").map_or("lpib", String::as_str))?;
    let bbox = bbox_of(r.iter().chain(&s).map(|rec| rec.point));
    if bbox.is_empty() {
        return Err("inputs contain no points".into());
    }
    let (cluster, mut spec, trace) = build_spec(flags, bbox)?;
    if flags.get("out").is_none() {
        spec = spec.counting_only();
    }
    let out = algo.run(&cluster, &spec, r, s);
    report(&out);
    trace.write()?;
    if let Some(path) = flags.get("out") {
        write_pairs(path, &out.pairs)?;
    }
    Ok(())
}

fn cmd_self_join(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = load_records(required(flags, "input")?)?;
    let bbox = bbox_of(input.iter().map(|rec| rec.point));
    if bbox.is_empty() {
        return Err("input contains no points".into());
    }
    let (cluster, mut spec, trace) = build_spec(flags, bbox)?;
    if flags.get("out").is_none() {
        spec = spec.counting_only();
    }
    let out = self_join(&cluster, &spec, input);
    report(&out);
    trace.write()?;
    if let Some(path) = flags.get("out") {
        write_pairs(path, &out.pairs)?;
    }
    Ok(())
}

fn cmd_knn(flags: &HashMap<String, String>) -> Result<(), String> {
    let r = load_records(required(flags, "r")?)?;
    let s = load_records(required(flags, "s")?)?;
    let k: usize = parse(required(flags, "k")?, "--k")?;
    let bbox = bbox_of(r.iter().chain(&s).map(|rec| rec.point));
    if bbox.is_empty() {
        return Err("inputs contain no points".into());
    }
    let (cluster, spec, _trace) = build_spec(flags, bbox)?;
    let out = knn_join(&cluster, &spec, k, r, s);
    println!("queries answered     : {}", out.neighbors.len());
    println!("expanding rounds     : {}", out.rounds);
    println!(
        "shuffle total        : {} KiB",
        out.shuffle.total_bytes() / 1024
    );
    let mean_nn: f64 = out
        .neighbors
        .iter()
        .filter_map(|(_, ns)| ns.first().map(|(_, d)| *d))
        .sum::<f64>()
        / out.neighbors.len().max(1) as f64;
    println!("mean nearest distance: {mean_nn:.4}");
    Ok(())
}

fn cmd_range(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = load_records(required(flags, "input")?)?;
    let rect_spec = required(flags, "rect")?;
    let nums: Vec<f64> = rect_spec
        .split(',')
        .map(|v| parse(v.trim(), "--rect coordinate"))
        .collect::<Result<_, _>>()?;
    if nums.len() != 4 {
        return Err("--rect needs exactly x0,y0,x1,y1".into());
    }
    let region = Rect::new(
        nums[0].min(nums[2]),
        nums[1].min(nums[3]),
        nums[0].max(nums[2]),
        nums[1].max(nums[3]),
    );
    let bbox = bbox_of(input.iter().map(|rec| rec.point));
    if bbox.is_empty() {
        return Err("input contains no points".into());
    }
    let (cluster, spec, _trace) = build_spec(flags, bbox)?;
    let table = PartitionedPoints::build(&cluster, &spec, input);
    let (ids, _) = table.range_query(&cluster, region);
    println!("points in region     : {}", ids.len());
    for id in ids.iter().take(10) {
        println!("  #{id}");
    }
    if ids.len() > 10 {
        println!("  ... and {} more", ids.len() - 10);
    }
    Ok(())
}

/// ASCII density map of a dataset — a quick look at the skew the adaptive
/// algorithms exploit.
fn cmd_heatmap(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = load_records(required(flags, "input")?)?;
    if input.is_empty() {
        return Err("input contains no points".into());
    }
    let width: usize = flags.get("width").map_or(Ok(64), |s| parse(s, "--width"))?;
    let height: usize = flags
        .get("height")
        .map_or(Ok(24), |s| parse(s, "--height"))?;
    if width == 0 || height == 0 {
        return Err("--width/--height must be positive".into());
    }
    let bbox = bbox_of(input.iter().map(|rec| rec.point));
    let mut counts = vec![0u64; width * height];
    for rec in &input {
        let cx = (((rec.point.x - bbox.min_x) / bbox.width().max(1e-12) * width as f64) as usize)
            .min(width - 1);
        let cy = (((rec.point.y - bbox.min_y) / bbox.height().max(1e-12) * height as f64) as usize)
            .min(height - 1);
        counts[cy * width + cx] += 1;
    }
    let max = *counts.iter().max().unwrap() as f64;
    const SHADES: &[u8] = b" .:-=+*#%@";
    println!(
        "{} points, bbox [{:.2}, {:.2}] x [{:.2}, {:.2}], peak bucket {max}",
        input.len(),
        bbox.min_x,
        bbox.max_x,
        bbox.min_y,
        bbox.max_y
    );
    for row in (0..height).rev() {
        let line: String = (0..width)
            .map(|col| {
                let c = counts[row * width + col] as f64;
                let idx = ((c / max).sqrt() * (SHADES.len() - 1) as f64).round() as usize;
                SHADES[idx.min(SHADES.len() - 1)] as char
            })
            .collect();
        println!("{line}");
    }
    Ok(())
}

/// Journal maintenance: `asj journal compact FILE` rewrites a server
/// journal down to its live records (atomically — tmp, fsync, rename), for
/// operators trimming a long-lived server's disk offline.
fn cmd_journal(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("compact") => {
            let [_, path] = args else {
                return Err("usage: asj journal compact FILE".into());
            };
            let stats = Journal::compact_file(std::path::Path::new(path))
                .map_err(|e| format!("compacting {path}: {e}"))?;
            println!(
                "compacted {path}: kept {kept} record(s), dropped {dropped}, \
                 {before} -> {after} bytes",
                kept = stats.kept,
                dropped = stats.dropped,
                before = stats.bytes_before,
                after = stats.bytes_after,
            );
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown journal action '{other}' (expected 'compact')"
        )),
        None => Err("usage: asj journal compact FILE".into()),
    }
}

/// Multi-tenant job server: run a queue file of tenant joins on one
/// simulated cluster under admission control and a scheduling policy.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = required(flags, "jobs")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let tenants = parse_queue(&text).map_err(|e| e.to_string())?;
    if tenants.is_empty() {
        return Err(format!("no jobs in {path}"));
    }
    let policy = match flags.get("policy") {
        Some(s) => SchedPolicy::parse(s)
            .ok_or_else(|| format!("unknown policy '{s}' (fair-share | fifo)"))?,
        None => SchedPolicy::FairShare,
    };
    let nodes: usize = flags.get("nodes").map_or(Ok(12), |s| parse(s, "--nodes"))?;
    let trace = TraceSink::from_flags(flags, nodes)?;
    let mut cluster = Cluster::new(ClusterConfig::new(nodes)).with_recorder(trace.recorder.clone());
    if let Some(budget) = flags.get("memory-budget") {
        cluster = cluster.with_memory_budget(parse_bytes(budget)?);
    }
    let compact_every = flags
        .get("compact-every")
        .map(|s| parse::<u64>(s, "--compact-every"))
        .transpose()?;
    if compact_every == Some(0) {
        return Err("--compact-every must be positive".into());
    }
    let recovery = RecoveryOptions {
        journal: flags.get("journal").map(PathBuf::from),
        checkpoint_dir: flags.get("checkpoint-dir").map(PathBuf::from),
        recover: flags.contains_key("recover"),
        compact_every,
    };
    if recovery.recover && recovery.journal.is_none() {
        return Err("--recover requires --journal FILE".into());
    }
    if recovery.compact_every.is_some() && recovery.journal.is_none() {
        return Err("--compact-every requires --journal FILE".into());
    }
    let run =
        run_queue_recoverable(&cluster, &tenants, policy, &recovery).map_err(|e| e.to_string())?;
    println!("policy               : {}", run.policy.name());
    println!("tenants              : {}", run.tenants.len());
    println!("simulated nodes      : {nodes}");
    if let Some(budget) = cluster.memory_budget() {
        println!("memory budget        : {} KiB/node", budget / 1024);
    }
    println!(
        "server clock         : {:.3} s (serialized simulated time)",
        run.clock.as_secs_f64()
    );
    println!("quanta granted       : {}", run.grants.len());
    if recovery.journal.is_some() {
        println!("journal grants       : {}", run.journal_grants.len());
        println!("checkpoint bytes     : {}", run.checkpoint_bytes);
        println!("stages recovered     : {}", run.stages_recovered);
        let replayed = run.tenants.iter().filter(|t| t.recovered).count();
        println!("tenants replayed     : {replayed}");
    }
    for report in &run.tenants {
        println!("{}", report.summary_line());
    }
    if flags.contains_key("verify") {
        for (tenant, report) in tenants.iter().zip(&run.tenants) {
            let Ok(shared) = &report.outcome else {
                continue;
            };
            let solo = solo_outcome(&cluster, tenant)?;
            if shared != &solo {
                return Err(format!(
                    "isolation violated for tenant '{}': concurrent checksum {:016x} != solo {:016x}",
                    tenant.name, shared.checksum, solo.checksum
                ));
            }
        }
        println!("isolation            : all tenants match their solo runs");
    }
    trace.write()?;
    if run.crashed {
        // A fault-plan crash clause stopped the server mid-queue; the journal
        // (if any) holds the prefix, so this is a restartable state, not a
        // per-tenant failure.
        return Err("server crashed mid-queue (fault plan crash clause); \
             re-run with --recover to resume from the journal"
            .into());
    }
    let failed: Vec<&str> = run
        .tenants
        .iter()
        .filter(|t| t.outcome.is_err())
        .map(|t| t.name.as_str())
        .collect();
    if !failed.is_empty() {
        return Err(format!(
            "{} tenant(s) failed: {}",
            failed.len(),
            failed.join(", ")
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_pairs() {
        let args: Vec<String> = ["--eps", "0.5", "--algo", "diff"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["eps"], "0.5");
        assert_eq!(f["algo"], "diff");
    }

    #[test]
    fn flags_reject_missing_value_and_bad_prefix() {
        assert!(parse_flags(&["--eps".to_string()]).is_err());
        assert!(parse_flags(&["eps".to_string(), "1".to_string()]).is_err());
    }

    #[test]
    fn bool_flags_need_no_value() {
        let args: Vec<String> = ["--speculation", "--eps", "0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["speculation"], "true");
        assert_eq!(f["eps"], "0.5");
    }

    #[test]
    fn fault_setup_reads_flags() {
        let flags: HashMap<String, String> = [
            ("faults", "p=0.5,slow:1=2.0"),
            ("seed", "3"),
            ("max-attempts", "6"),
            ("speculation", "true"),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        let (plan, policy) = fault_setup(&flags).unwrap().expect("faults requested");
        assert!(plan.is_active());
        assert_eq!(plan.seed, 3);
        assert_eq!(plan.slowdown(1), 2.0);
        assert_eq!(policy.max_attempts, 6);
        assert!(policy.speculation);

        let bad: HashMap<String, String> = [("faults".to_string(), "gremlins".to_string())].into();
        assert!(fault_setup(&bad).is_err());

        // A bare retry policy routes through recovery with an inert plan.
        // (Skipped when the chaos env vars are set, e.g. in the CI
        // fault-matrix job, where from_env() supplies an active plan.)
        if std::env::var("ASJ_FAULTS").is_err() && std::env::var("ASJ_FAULT_SEED").is_err() {
            let spec_only: HashMap<String, String> =
                [("speculation".to_string(), "true".to_string())].into();
            let (plan, policy) = fault_setup(&spec_only).unwrap().expect("policy requested");
            assert!(!plan.is_active());
            assert!(policy.speculation);
        }
    }

    #[test]
    fn algorithm_names_resolve() {
        for (name, algo) in [
            ("lpib", Algorithm::Lpib),
            ("diff", Algorithm::Diff),
            ("uni-r", Algorithm::UniR),
            ("uni-s", Algorithm::UniS),
            ("eps-grid", Algorithm::EpsGrid),
            ("sedona", Algorithm::Sedona),
        ] {
            assert_eq!(algorithm_by_name(name).unwrap(), algo);
        }
        assert!(algorithm_by_name("nope").is_err());
    }

    #[test]
    fn kernel_flag_selects_local_kernel() {
        let bbox = Rect::new(0.0, 0.0, 10.0, 10.0);
        let base: HashMap<String, String> = [("eps".to_string(), "0.5".to_string())].into();
        let (_, spec, _) = build_spec(&base, bbox).unwrap();
        assert_eq!(spec.kernel, LocalKernel::Auto, "auto is the default");
        for (name, kernel) in [
            ("nested-loop", LocalKernel::NestedLoop),
            ("plane-sweep", LocalKernel::PlaneSweep),
            ("grid-bucket", LocalKernel::GridBucket),
            ("auto", LocalKernel::Auto),
        ] {
            let mut flags = base.clone();
            flags.insert("kernel".to_string(), name.to_string());
            let (_, spec, _) = build_spec(&flags, bbox).unwrap();
            assert_eq!(spec.kernel, kernel, "--kernel {name}");
        }
        let mut bad = base.clone();
        bad.insert("kernel".to_string(), "quadratic".to_string());
        assert!(build_spec(&bad, bbox).is_err());
    }

    #[test]
    fn memory_budget_flag_parses_and_caps_the_cluster() {
        assert_eq!(parse_bytes("65536").unwrap(), 65536);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("2M").unwrap(), 2 << 20);
        assert_eq!(parse_bytes("1g").unwrap(), 1 << 30);
        assert!(parse_bytes("lots").is_err());
        assert!(parse_bytes("").is_err());

        let bbox = Rect::new(0.0, 0.0, 10.0, 10.0);
        let base: HashMap<String, String> = [("eps".to_string(), "0.5".to_string())].into();
        let (cluster, _, _) = build_spec(&base, bbox).unwrap();
        assert_eq!(
            cluster.memory_accountant().budget(),
            None,
            "no flag leaves the accountant meter-only"
        );
        let mut flags = base.clone();
        flags.insert("memory-budget".to_string(), "64k".to_string());
        let (cluster, _, _) = build_spec(&flags, bbox).unwrap();
        assert_eq!(cluster.memory_accountant().budget(), Some(64 << 10));
        let mut bad = base;
        bad.insert("memory-budget".to_string(), "plenty".to_string());
        assert!(build_spec(&bad, bbox).is_err());
    }

    #[test]
    fn generator_names_resolve() {
        assert_eq!(
            gen_kind_by_name("gaussian").unwrap(),
            GenKind::GaussianClusters
        );
        assert_eq!(gen_kind_by_name("uniform").unwrap(), GenKind::Uniform);
        assert!(gen_kind_by_name("what").is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn end_to_end_generate_and_join() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let r_path = dir.join(format!("asj-cli-r-{pid}.csv"));
        let s_path = dir.join(format!("asj-cli-s-{pid}.csv"));
        let out_path = dir.join(format!("asj-cli-out-{pid}.csv"));
        let arg = |s: &str| s.to_string();
        run(&[
            arg("generate"),
            arg("--kind"),
            arg("uniform"),
            arg("--n"),
            arg("500"),
            arg("--out"),
            arg(r_path.to_str().unwrap()),
        ])
        .unwrap();
        run(&[
            arg("generate"),
            arg("--kind"),
            arg("gaussian"),
            arg("--n"),
            arg("500"),
            arg("--seed"),
            arg("9"),
            arg("--out"),
            arg(s_path.to_str().unwrap()),
        ])
        .unwrap();
        run(&[
            arg("join"),
            arg("--r"),
            arg(r_path.to_str().unwrap()),
            arg("--s"),
            arg(s_path.to_str().unwrap()),
            arg("--eps"),
            arg("1.5"),
            arg("--nodes"),
            arg("4"),
            arg("--partitions"),
            arg("8"),
            arg("--memory-budget"),
            arg("4k"),
            arg("--out"),
            arg(out_path.to_str().unwrap()),
        ])
        .unwrap();
        let pairs = std::fs::read_to_string(&out_path).unwrap();
        assert!(pairs.lines().all(|l| l.split(',').count() == 2));
        run(&[
            arg("knn"),
            arg("--r"),
            arg(r_path.to_str().unwrap()),
            arg("--s"),
            arg(s_path.to_str().unwrap()),
            arg("--k"),
            arg("3"),
            arg("--eps"),
            arg("1.0"),
        ])
        .unwrap();
        run(&[
            arg("range"),
            arg("--input"),
            arg(r_path.to_str().unwrap()),
            arg("--rect"),
            arg("-100,30,-90,40"),
            arg("--eps"),
            arg("1.0"),
        ])
        .unwrap();
        run(&[
            arg("heatmap"),
            arg("--input"),
            arg(s_path.to_str().unwrap()),
            arg("--width"),
            arg("40"),
            arg("--height"),
            arg("12"),
        ])
        .unwrap();
        run(&[
            arg("self-join"),
            arg("--input"),
            arg(s_path.to_str().unwrap()),
            arg("--eps"),
            arg("0.8"),
        ])
        .unwrap();
        for p in [r_path, s_path, out_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn serve_runs_a_queue_file_with_verification() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let jobs_path = dir.join(format!("asj-serve-jobs-{pid}.txt"));
        std::fs::write(
            &jobs_path,
            "# two tenants on one cluster\n\
             job alpha algo=lpib eps=0.5 n=600 partitions=8 seed=11\n\
             job beta algo=uni-r eps=0.3 n=900 partitions=8 seed=23 weight=2\n",
        )
        .unwrap();
        let arg = |s: &str| s.to_string();
        for policy in ["fair-share", "fifo"] {
            run(&[
                arg("serve"),
                arg("--jobs"),
                arg(jobs_path.to_str().unwrap()),
                arg("--policy"),
                arg(policy),
                arg("--nodes"),
                arg("4"),
                arg("--verify"),
            ])
            .unwrap_or_else(|e| panic!("serve --policy {policy}: {e}"));
        }
        let _ = std::fs::remove_file(jobs_path);
    }

    #[test]
    fn serve_journals_and_recovers_a_queue() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let jobs_path = dir.join(format!("asj-serve-journal-jobs-{pid}.txt"));
        let journal_path = dir.join(format!("asj-serve-journal-{pid}.jsonl"));
        let ckpt_dir = dir.join(format!("asj-serve-journal-ckpt-{pid}"));
        std::fs::write(
            &jobs_path,
            "job alpha algo=lpib eps=0.5 n=600 partitions=8 seed=11\n\
             job beta algo=uni-r eps=0.3 n=900 partitions=8 seed=23 weight=2\n",
        )
        .unwrap();
        let arg = |s: &str| s.to_string();
        // First run writes the journal and checkpoints; second run replays it.
        // Both legs must succeed and the journal must survive in between.
        for recover in [false, true] {
            let mut args = vec![
                arg("serve"),
                arg("--jobs"),
                arg(jobs_path.to_str().unwrap()),
                arg("--nodes"),
                arg("4"),
                arg("--journal"),
                arg(journal_path.to_str().unwrap()),
                arg("--checkpoint-dir"),
                arg(ckpt_dir.to_str().unwrap()),
            ];
            if recover {
                args.push(arg("--recover"));
            }
            run(&args).unwrap_or_else(|e| panic!("serve recover={recover}: {e}"));
            assert!(journal_path.exists(), "journal written");
        }
        // --recover without a journal flag is a usage error, not a crash.
        let err = run(&[
            arg("serve"),
            arg("--jobs"),
            arg(jobs_path.to_str().unwrap()),
            arg("--recover"),
        ])
        .unwrap_err();
        assert!(err.contains("--journal"), "{err}");
        let _ = std::fs::remove_file(jobs_path);
        let _ = std::fs::remove_file(journal_path);
        let _ = std::fs::remove_dir_all(ckpt_dir);
    }

    #[test]
    fn serve_compacts_the_journal_and_cli_compacts_offline() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let jobs_path = dir.join(format!("asj-serve-compact-jobs-{pid}.txt"));
        let journal_path = dir.join(format!("asj-serve-compact-{pid}.jsonl"));
        let ckpt_dir = dir.join(format!("asj-serve-compact-ckpt-{pid}"));
        std::fs::write(
            &jobs_path,
            "job alpha algo=lpib eps=0.5 n=600 partitions=8 seed=11\n\
             job beta algo=uni-r eps=0.3 n=900 partitions=8 seed=23 weight=2\n",
        )
        .unwrap();
        let arg = |s: &str| s.to_string();
        run(&[
            arg("serve"),
            arg("--jobs"),
            arg(jobs_path.to_str().unwrap()),
            arg("--nodes"),
            arg("4"),
            arg("--journal"),
            arg(journal_path.to_str().unwrap()),
            arg("--checkpoint-dir"),
            arg(ckpt_dir.to_str().unwrap()),
            arg("--compact-every"),
            arg("1"),
        ])
        .expect("serve with --compact-every");
        // Retention GC: every tenant finished, so no stage checkpoints
        // survive the run.
        let leftovers = std::fs::read_dir(&ckpt_dir)
            .map(|rd| rd.count())
            .unwrap_or(0);
        assert_eq!(leftovers, 0, "finished tenants' checkpoints were GC'd");
        // Recovery after in-run compaction still replays every tenant.
        run(&[
            arg("serve"),
            arg("--jobs"),
            arg(jobs_path.to_str().unwrap()),
            arg("--nodes"),
            arg("4"),
            arg("--journal"),
            arg(journal_path.to_str().unwrap()),
            arg("--checkpoint-dir"),
            arg(ckpt_dir.to_str().unwrap()),
            arg("--recover"),
        ])
        .expect("recover after compaction");
        // Offline compaction shrinks (or keeps) the file and stays readable.
        let before = std::fs::metadata(&journal_path).unwrap().len();
        run(&[
            arg("journal"),
            arg("compact"),
            arg(journal_path.to_str().unwrap()),
        ])
        .expect("journal compact");
        let after = std::fs::metadata(&journal_path).unwrap().len();
        assert!(after <= before, "compaction never grows the journal");
        // Usage errors, not crashes.
        assert!(run(&[arg("journal")]).is_err());
        assert!(run(&[arg("journal"), arg("prune")]).is_err());
        let err = run(&[
            arg("serve"),
            arg("--jobs"),
            arg(jobs_path.to_str().unwrap()),
            arg("--compact-every"),
            arg("2"),
        ])
        .unwrap_err();
        assert!(err.contains("--journal"), "{err}");
        let _ = std::fs::remove_file(jobs_path);
        let _ = std::fs::remove_file(journal_path);
        let _ = std::fs::remove_dir_all(ckpt_dir);
    }

    #[test]
    fn serve_rejects_oversized_tenants_and_bad_queues() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let jobs_path = dir.join(format!("asj-serve-reject-{pid}.txt"));
        std::fs::write(
            &jobs_path,
            "job hog algo=lpib eps=0.5 n=600 partitions=8 estimate=1g\n",
        )
        .unwrap();
        let arg = |s: &str| s.to_string();
        let err = run(&[
            arg("serve"),
            arg("--jobs"),
            arg(jobs_path.to_str().unwrap()),
            arg("--nodes"),
            arg("4"),
            arg("--memory-budget"),
            arg("1m"),
        ])
        .unwrap_err();
        assert!(err.contains("rejected"), "{err}");

        std::fs::write(&jobs_path, "job broken n=100\n").unwrap();
        let err = run(&[
            arg("serve"),
            arg("--jobs"),
            arg(jobs_path.to_str().unwrap()),
        ])
        .unwrap_err();
        assert!(err.contains("line 1") && err.contains("eps"), "{err}");
        let _ = std::fs::remove_file(jobs_path);
    }

    #[test]
    fn join_with_trace_writes_chrome_and_jsonl() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let r_path = dir.join(format!("asj-trace-r-{pid}.csv"));
        let chrome_path = dir.join(format!("asj-trace-{pid}.json"));
        let jsonl_path = dir.join(format!("asj-trace-{pid}.jsonl"));
        let arg = |s: &str| s.to_string();
        run(&[
            arg("generate"),
            arg("--kind"),
            arg("uniform"),
            arg("--n"),
            arg("400"),
            arg("--out"),
            arg(r_path.to_str().unwrap()),
        ])
        .unwrap();
        run(&[
            arg("join"),
            arg("--r"),
            arg(r_path.to_str().unwrap()),
            arg("--s"),
            arg(r_path.to_str().unwrap()),
            arg("--eps"),
            arg("1.0"),
            arg("--nodes"),
            arg("3"),
            arg("--partitions"),
            arg("6"),
            arg("--trace"),
            arg(chrome_path.to_str().unwrap()),
        ])
        .unwrap();
        let chrome = std::fs::read_to_string(&chrome_path).unwrap();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        // One named lane per simulated node plus the driver.
        for lane in [
            "\"driver\"",
            "\"node 0 (sim)\"",
            "\"node 1 (sim)\"",
            "\"node 2 (sim)\"",
        ] {
            assert!(chrome.contains(lane), "missing lane {lane}");
        }
        // At least one span per join phase of the pipeline.
        for phase in [
            "\"sampling\"",
            "\"agreement_graph\"",
            "\"marking\"",
            "\"shuffle\"",
            "\"local_join\"",
        ] {
            assert!(chrome.contains(phase), "missing phase {phase}");
        }
        run(&[
            arg("self-join"),
            arg("--input"),
            arg(r_path.to_str().unwrap()),
            arg("--eps"),
            arg("1.0"),
            arg("--nodes"),
            arg("3"),
            arg("--partitions"),
            arg("6"),
            arg("--trace"),
            arg(jsonl_path.to_str().unwrap()),
            arg("--trace-format"),
            arg("jsonl"),
        ])
        .unwrap();
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(jsonl.lines().count() > 4);
        assert!(jsonl.lines().next().unwrap().contains("\"kind\":\"meta\""));
        assert!(jsonl.contains("\"kind\":\"span\""));
        for p in [r_path, chrome_path, jsonl_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn bad_trace_format_is_rejected() {
        let flags: HashMap<String, String> = [
            ("trace".to_string(), "t.json".to_string()),
            ("trace-format".to_string(), "xml".to_string()),
        ]
        .into_iter()
        .collect();
        assert!(TraceSink::from_flags(&flags, 2).is_err());
    }
}
