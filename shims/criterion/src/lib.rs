//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's benches only need a harness that compiles and runs:
//! groups, `bench_function`/`bench_with_input`, `iter`/`iter_batched`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. This
//! shim executes every routine `sample_size` times and prints the mean
//! duration per iteration — enough to compare before/after locally, with
//! none of criterion's statistics, plotting, or CLI machinery.

use std::time::{Duration, Instant};

/// Opaque value barrier — defeats constant folding of benchmark inputs.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` sizes its batches. Ignored by the shim (every batch
/// has one iteration), kept for call-site compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier of one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Measurement handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one routine invocation, recorded by `iter*`.
    mean: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.samples as u32;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl ToString, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id.to_string());
        self.criterion.run_one(&label, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {label:<48} {:>12.3?}/iter", b.mean);
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 3);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut setups = 0;
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("p", 7), &7usize, |b, &n| {
            b.iter_batched(
                || {
                    setups += 1;
                    n
                },
                |v| {
                    runs += 1;
                    v * 2
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert_eq!(setups, 2);
        assert_eq!(runs, 2);
        assert_eq!(format!("{}", BenchmarkId::from_parameter("x")), "x");
    }
}
