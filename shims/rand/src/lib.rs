//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no registry access, so the workspace vendors the
//! slice of `rand` it actually uses: seedable deterministic generators
//! (`StdRng`, `SmallRng`), `gen_range` over half-open and inclusive numeric
//! ranges, and `gen_bool`. Both rngs are xoshiro256++ seeded through
//! SplitMix64 — the same construction `rand`'s own `SmallRng` uses — so
//! streams are deterministic, well distributed and cheap. Exact values differ
//! from upstream `rand`, which no test in this workspace depends on.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into independent state words.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core state shared by both named generators.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    macro_rules! named_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone)]
            pub struct $name(Xoshiro256);

            impl RngCore for $name {
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    $name(Xoshiro256::from_u64(seed))
                }
            }
        };
    }

    named_rng!(
        /// Deterministic general-purpose generator (stand-in for `rand::rngs::StdRng`).
        StdRng
    );
    named_rng!(
        /// Small fast generator (stand-in for `rand::rngs::SmallRng`).
        SmallRng
    );
}

/// A type `gen_range` can sample uniformly. The blanket [`SampleRange`]
/// impls below are generic over this trait (one impl per *range shape*, not
/// per element type) so that type inference can flow from the expected
/// output into a range built from unsuffixed literals — exactly like
/// upstream `rand`'s `SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd + std::fmt::Debug {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// 53 uniform mantissa bits in [0, 1).
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let v = lo + (hi - lo) * unit_f64(rng) as $t;
                // Guard the open upper bound against floating-point round-up.
                if v >= hi {
                    lo
                } else {
                    v
                }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let v = lo + (hi - lo) * unit_f64(rng) as $t;
                if v > hi {
                    hi
                } else {
                    v
                }
            }
        }
    )*};
}

sample_uniform_float!(f64, f32);

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a random value can be drawn from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range {self:?}");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range {lo:?}..={hi:?}");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        // Compare 53 uniform bits against p; p == 1.0 must always win.
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3..9);
            assert!((3..9).contains(&i));
            let k = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&k));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 - 30_000.0).abs() < 1_500.0, "hits={hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn uniform_f64_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
