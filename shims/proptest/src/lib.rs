//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests use a compact slice of proptest: the
//! [`proptest!`] macro over named strategies, numeric-range and tuple
//! strategies, `prop::collection::vec`, `prop_map`, `prop_oneof!`,
//! `any::<T>()`, and the `prop_assert*` / `prop_assume!` assertion macros.
//! This crate reimplements exactly that surface with *deterministic random
//! sampling* (no shrinking): every test gets a seed derived from its fully
//! qualified name, so failures reproduce across runs and machines.
//!
//! Semantics preserved from upstream:
//! * `prop_assert!`/`prop_assert_eq!` return `Err(TestCaseError)` from the
//!   enclosing case (usable in helper functions returning
//!   `Result<(), TestCaseError>` and with the `?` operator),
//! * `prop_assume!` rejects the case without failing the test,
//! * `ProptestConfig::with_cases(n)` bounds the number of cases.

use std::fmt;

pub mod test_runner {
    use super::fmt;

    /// Run configuration; only `cases` is honored by this stand-in.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed: the whole test fails.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`: skip the case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::{Range, RangeInclusive};

    /// The deterministic source all strategies sample from.
    pub type TestRng = StdRng;

    /// Creates the rng for one test case: seed is derived from the test's
    /// fully qualified name so each test has an independent stream.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }

    /// A recipe for generating values of `Value`. No shrinking: `sample`
    /// draws one value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// Type-erased strategy, the building block of `prop_oneof!`.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Full-range value generation for `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            use rand::RngCore;
            // Arbitrary bit patterns, excluding NaN so equality-based
            // roundtrip properties hold.
            let v = f64::from_bits(rng.next_u64());
            if v.is_nan() {
                0.0
            } else {
                v
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            use rand::RngCore;
            let v = f32::from_bits(rng.next_u32());
            if v.is_nan() {
                0.0
            } else {
                v
            }
        }
    }

    /// `any::<T>()` — the full value domain of `T` (minus NaN for floats).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for collection strategies: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-defining macro. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a plain test that samples `cases` deterministic inputs and runs
/// the body for each; `prop_assume!` rejections skip the case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut __rng = $crate::strategy::case_rng(full_name, case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(e) if e.is_reject() => {
                        rejected += 1;
                        // Mirror proptest's global rejection cap loosely.
                        assert!(
                            rejected <= 8 * config.cases,
                            "{full_name}: too many prop_assume! rejections"
                        );
                    }
                    ::core::result::Result::Err(e) => {
                        panic!("{full_name} failed at case {case}: {e}");
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(v: usize) -> Result<(), TestCaseError> {
        prop_assert!(v < 1_000_000, "v={v}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            x in 0.0f64..10.0,
            n in 1usize..5,
            pair in (0u64..10, -2i32..3),
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(pair.0 < 10);
            prop_assert!((-2..3).contains(&pair.1));
            helper(n)?;
        }

        #[test]
        fn collections_and_maps(
            v in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..7),
            w in prop::collection::vec(any::<u8>(), 4),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        use crate::strategy::{case_rng, Strategy};
        let s = prop_oneof![
            (0u32..1).prop_map(|_| "a"),
            (0u32..1).prop_map(|_| "b"),
            (0u32..1).prop_map(|_| "c"),
        ];
        let mut rng = case_rng("oneof", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::{case_rng, Strategy};
        let s = (0.0f64..1.0, 0u64..1000);
        let a: Vec<_> = (0..5).map(|c| s.sample(&mut case_rng("det", c))).collect();
        let b: Vec<_> = (0..5).map(|c| s.sample(&mut case_rng("det", c))).collect();
        assert_eq!(a, b);
    }
}
