//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`]/[`BufMut`] traits and the [`BytesMut`]/[`Bytes`]
//! buffer pair with exactly the little-endian scalar accessors the
//! workspace's [`Wire`] format uses. Backed by a plain `Vec<u8>` plus a read
//! cursor — no refcounted slices, which nothing here needs.

macro_rules! put_le {
    ($(($put:ident, $t:ty)),*) => {$(
        #[inline]
        fn $put(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

macro_rules! get_le {
    ($(($get:ident, $t:ty)),*) => {$(
        #[inline]
        fn $get(&mut self) -> $t {
            let mut raw = [0u8; std::mem::size_of::<$t>()];
            self.copy_to_slice(&mut raw);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// Write side: append scalars and slices to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le!(
        (put_u16_le, u16),
        (put_u32_le, u32),
        (put_u64_le, u64),
        (put_i32_le, i32),
        (put_i64_le, i64),
        (put_f32_le, f32),
        (put_f64_le, f64)
    );
}

/// Read side: consume scalars and slices from the front of a buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_le!(
        (get_u16_le, u16),
        (get_u32_le, u32),
        (get_u64_le, u64),
        (get_i32_le, i32),
        (get_i64_le, i64),
        (get_f32_le, f32),
        (get_f64_le, f64)
    );
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable write buffer; [`BytesMut::freeze`] turns it into a readable
/// [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable read buffer with a consuming cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "buffer underflow: want {} bytes, {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_le() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(65_000);
        buf.put_u32_le(123);
        buf.put_u64_le(u64::MAX);
        buf.put_i32_le(-5);
        buf.put_i64_le(i64::MIN);
        buf.put_f32_le(1.5);
        buf.put_f64_le(std::f64::consts::PI);
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 4 + 8 + 4 + 8);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 65_000);
        assert_eq!(b.get_u32_le(), 123);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert_eq!(b.get_i32_le(), -5);
        assert_eq!(b.get_i64_le(), i64::MIN);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.get_f64_le(), std::f64::consts::PI);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_buf_consumes_from_front() {
        let data = [1u8, 2, 3, 4];
        let mut s: &[u8] = &data;
        let mut out = [0u8; 2];
        s.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2]);
        assert_eq!(s.remaining(), 2);
    }
}
