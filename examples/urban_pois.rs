//! Urban analytics scenario: match park-like points of interest against a
//! hydrography network — "which water features lie within ε of a park?" —
//! the kind of cross-dataset proximity question the paper's introduction
//! motivates (urban planning, cartography).
//!
//! Demonstrates:
//! * heavily skewed *real-data-like* inputs (power-law urban clusters vs
//!   river polylines),
//! * carrying non-spatial attributes (names) through the join,
//! * why the adaptive agreement graph helps exactly here: in river-dense
//!   regions it replicates parks, in park-dense regions it replicates water.
//!
//! ```sh
//! cargo run --release --example urban_pois
//! ```

use adaptive_spatial_join::prelude::*;

fn main() {
    let catalog = Catalog::new(60_000);
    // R2 = parks-like clusters, R1 = hydrography-like river network.
    let parks = to_records(&catalog.r2.points(), 24); // 24-byte name payload
    let water = to_records(&catalog.r1.points(), 24);
    println!(
        "parks: {} points, water features: {} points",
        parks.len(),
        water.len()
    );

    let cluster = Cluster::new(ClusterConfig::new(12));
    let eps = 0.31; // ~34 km at these latitudes
    let spec = JoinSpec::new(catalog.r1.bbox, eps);

    let adaptive = adaptive_join(
        &cluster,
        &spec,
        AgreementPolicy::Lpib,
        parks.clone(),
        water.clone(),
    );
    let pbsm_r = pbsm_join(
        &cluster,
        &spec,
        ReplicateSide::R,
        parks.clone(),
        water.clone(),
    );
    let pbsm_s = pbsm_join(&cluster, &spec, ReplicateSide::S, parks, water);

    println!("\npairs within {eps}°: {}", adaptive.result_count);
    println!(
        "(identical across algorithms: {} / {})",
        pbsm_r.result_count, pbsm_s.result_count
    );
    assert_eq!(adaptive.result_count, pbsm_r.result_count);
    assert_eq!(adaptive.result_count, pbsm_s.result_count);

    let [ar, as_] = adaptive.replicated;
    println!("\nadaptive replication per side: {ar} park copies, {as_} water copies");
    println!("  -> the graph of agreements replicated BOTH sides, each where it is cheaper");
    println!(
        "adaptive total {} vs UNI(parks) {} vs UNI(water) {}",
        adaptive.replicated_total(),
        pbsm_r.replicated_total(),
        pbsm_s.replicated_total()
    );
    println!(
        "shuffle remote reads: adaptive {} KiB, UNI(parks) {} KiB, UNI(water) {} KiB",
        adaptive.metrics.shuffle.remote_bytes / 1024,
        pbsm_r.metrics.shuffle.remote_bytes / 1024,
        pbsm_s.metrics.shuffle.remote_bytes / 1024
    );

    // A few sample matches, with their ids (payloads carry the attributes).
    for (rid, sid) in adaptive.pairs.iter().take(5) {
        println!("  park #{rid} is within eps of water feature #{sid}");
    }
}
