//! Quickstart: run an adaptive-replication ε-distance join and compare its
//! replication/shuffle footprint against PBSM on the same data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adaptive_spatial_join::prelude::*;

fn main() {
    // Two synthetic point sets with different skew, in the paper's bounding
    // box (continental US).
    let catalog = Catalog::new(50_000);
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    println!("|R| = {}, |S| = {}", r.len(), s.len());

    // A simulated 12-node cluster and a join with ε chosen so that grid
    // cells hold a realistic number of points.
    let cluster = Cluster::new(ClusterConfig::new(12));
    let spec = JoinSpec::new(catalog.s1.bbox, 0.34).counting_only();

    println!(
        "{:<8} {:>12} {:>16} {:>12} {:>10}",
        "algo", "replicated", "shuffle remote", "results", "sim time"
    );
    for (name, out) in [
        (
            "LPiB",
            adaptive_join(&cluster, &spec, AgreementPolicy::Lpib, r.clone(), s.clone()),
        ),
        (
            "DIFF",
            adaptive_join(&cluster, &spec, AgreementPolicy::Diff, r.clone(), s.clone()),
        ),
        (
            "UNI(R)",
            pbsm_join(&cluster, &spec, ReplicateSide::R, r.clone(), s.clone()),
        ),
        (
            "UNI(S)",
            pbsm_join(&cluster, &spec, ReplicateSide::S, r.clone(), s.clone()),
        ),
    ] {
        println!(
            "{:<8} {:>12} {:>13} KiB {:>12} {:>8.3}s",
            name,
            out.replicated_total(),
            out.metrics.shuffle.remote_bytes / 1024,
            out.result_count,
            out.metrics.simulated_time().as_secs_f64(),
        );
    }
    println!("\nAll four algorithms return identical result sets; adaptive");
    println!("replication just moves (and compares) far fewer copies.");
}
