//! Scalability lab: sweep data sizes and cluster widths in one sitting and
//! watch how adaptive replication's advantage grows with scale (the Fig. 13
//! and Fig. 14 behaviours, as a library-API walkthrough).
//!
//! ```sh
//! cargo run --release --example scalability_lab
//! ```

use adaptive_spatial_join::prelude::*;

fn run(cluster: &Cluster, spec: &JoinSpec, policy: AgreementPolicy, base: usize) -> JoinOutput {
    let catalog = Catalog::new(base);
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    adaptive_join(cluster, spec, policy, r, s)
}

fn main() {
    let catalog = Catalog::new(1);
    let eps = 0.38;
    let spec = JoinSpec::new(catalog.s1.bbox, eps).counting_only();

    println!("--- data-size sweep (12 simulated nodes) ---");
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>12}",
        "points", "replicated", "shuffle (KiB)", "results", "join (s)"
    );
    let cluster = Cluster::new(ClusterConfig::new(12));
    for base in [20_000usize, 40_000, 80_000] {
        let out = run(&cluster, &spec, AgreementPolicy::Lpib, base);
        println!(
            "{:>8} {:>12} {:>14} {:>12} {:>12.3}",
            base * 2,
            out.replicated_total(),
            out.metrics.shuffle.remote_bytes / 1024,
            out.result_count,
            out.metrics.join.makespan().as_secs_f64()
        );
    }

    println!("\n--- node sweep (80k x 80k points) ---");
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "nodes", "shuffle (KiB)", "sim time (s)", "imbalance"
    );
    for nodes in [2usize, 4, 8, 12] {
        let cluster = Cluster::new(ClusterConfig::new(nodes));
        let out = run(&cluster, &spec, AgreementPolicy::Lpib, 40_000);
        println!(
            "{:>6} {:>14} {:>14.3} {:>12.2}",
            nodes,
            out.metrics.shuffle.remote_bytes / 1024,
            out.metrics.simulated_time().as_secs_f64(),
            out.metrics.join.imbalance()
        );
    }
    println!("\nMore nodes: lower makespan, slightly more remote shuffle —");
    println!("the same trade Fig. 14 of the paper shows.");
}
