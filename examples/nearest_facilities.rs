//! k-nearest-neighbor join: for every dwelling, the 3 nearest facilities —
//! the companion query of the distance join in the engines the paper
//! compares against (Simba, LocationSpark).
//!
//! ```sh
//! cargo run --release --example nearest_facilities
//! ```

use adaptive_spatial_join::data::{Catalog, DatasetSpec, GenKind, PAPER_BBOX};
use adaptive_spatial_join::join::{knn_join, to_records, JoinSpec};
use adaptive_spatial_join::prelude::*;

fn main() {
    // Dwellings follow population clusters; facilities are sparser and
    // follow a different layout.
    let catalog = Catalog::new(30_000);
    let dwellings = to_records(&catalog.s1.points(), 0);
    let facilities_spec = DatasetSpec {
        name: "facilities",
        kind: GenKind::Parks,
        cardinality: 3_000,
        seed: 777,
        bbox: PAPER_BBOX,
        sigma_scale: 1.0,
    };
    let facilities = to_records(&facilities_spec.points(), 0);
    println!(
        "{} dwellings, {} facilities",
        dwellings.len(),
        facilities.len()
    );

    let cluster = Cluster::new(ClusterConfig::new(8));
    let spec = JoinSpec::new(PAPER_BBOX, 0.4).with_partitions(48);
    let k = 3;
    let out = knn_join(&cluster, &spec, k, dwellings, facilities);

    println!(
        "kNN join finished in {} expanding-ring rounds, {} KiB shuffled",
        out.rounds,
        out.shuffle.total_bytes() / 1024
    );
    let mut hist = [0usize; 4];
    let mut far = (0u64, 0.0f64);
    for (q, ns) in &out.neighbors {
        hist[ns.len().min(3)] += 1;
        if let Some(&(_, d)) = ns.first() {
            if d > far.1 {
                far = (*q, d);
            }
        }
    }
    println!("queries with full k answers: {}", hist[3]);
    println!(
        "most isolated dwelling: #{} — nearest facility {:.3} degrees away",
        far.0, far.1
    );
    for (q, ns) in out.neighbors.iter().take(3) {
        let pretty: Vec<String> = ns.iter().map(|(id, d)| format!("#{id} ({d:.3})")).collect();
        println!("  dwelling #{q} -> {}", pretty.join(", "));
    }
}
