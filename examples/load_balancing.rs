//! Load-balancing demo (§6.2 / Table 7): on skewed data, Spark's default
//! hash placement can leave one worker with most of the join work. The LPT
//! greedy uses the sampled per-cell cost estimates to even the load.
//!
//! Prints an ASCII per-node busy-time chart for both placements.
//!
//! ```sh
//! cargo run --release --example load_balancing
//! ```

use adaptive_spatial_join::data::{DatasetSpec, GenKind, PAPER_BBOX};
use adaptive_spatial_join::prelude::*;

fn busy_chart(label: &str, out: &JoinOutput) {
    println!(
        "\n{label}: simulated join makespan {:.3}s",
        out.metrics.join.makespan().as_secs_f64()
    );
    let max = out
        .metrics
        .join
        .per_node_busy
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for (node, busy) in out.metrics.join.per_node_busy.iter().enumerate() {
        let secs = busy.as_secs_f64();
        let bar = "#".repeat((secs / max * 50.0).round() as usize);
        println!("  node {node:>2} {secs:>8.4}s {bar}");
    }
    println!("  imbalance (max/avg): {:.2}", out.metrics.join.imbalance());
}

fn main() {
    // Strongly clustered synthetic data (tight clusters, sigma_scale < 1):
    // a handful of grid cells carry most of the candidate pairs, which is
    // exactly when hash placement leaves some workers idle.
    let tight = |name: &'static str, seed: u64| DatasetSpec {
        name,
        kind: GenKind::GaussianClusters,
        cardinality: 250_000,
        seed,
        bbox: PAPER_BBOX,
        sigma_scale: 0.6,
    };
    let r = to_records(&tight("R", 303).points(), 0);
    let s = to_records(&tight("S", 404).points(), 0);

    let cluster = Cluster::new(ClusterConfig::new(8));
    let eps = 0.5;
    let base = JoinSpec::new(PAPER_BBOX, eps)
        .with_sample_fraction(0.2)
        .counting_only();

    let hash = adaptive_join(
        &cluster,
        &base.clone().with_placement(Placement::Hash),
        AgreementPolicy::Lpib,
        r.clone(),
        s.clone(),
    );
    let lpt = adaptive_join(
        &cluster,
        &base.with_placement(Placement::Lpt),
        AgreementPolicy::Lpib,
        r,
        s,
    );
    assert_eq!(hash.result_count, lpt.result_count);

    busy_chart("hash placement", &hash);
    busy_chart("LPT placement", &lpt);

    let h = hash.metrics.join.makespan().as_secs_f64();
    let l = lpt.metrics.join.makespan().as_secs_f64();
    if l <= h {
        println!(
            "\nLPT lowers the join makespan by {:.1}% on this workload.",
            (h - l) / h * 100.0
        );
    } else {
        println!(
            "\nLPT raises the join makespan by {:.1}% on this workload \
                  (estimates too noisy at this scale).",
            (l - h) / h * 100.0
        );
    }
}
