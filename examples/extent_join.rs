//! Objects with extent: join river polylines against park polygons —
//! "which parks lie within ε of a river?" — the paper's §8 future-work
//! direction, on the provided MASJ + reference-point substrate.
//!
//! ```sh
//! cargo run --release --example extent_join
//! ```

use adaptive_spatial_join::data::{random_boxes, random_polylines};
use adaptive_spatial_join::geom::{Rect, Shape};
use adaptive_spatial_join::join::{brute_force_extent_pairs, extent_join, ExtentRecord, JoinSpec};
use adaptive_spatial_join::prelude::*;

fn main() {
    let bbox = Rect::new(0.0, 0.0, 100.0, 60.0);
    let rivers: Vec<ExtentRecord> = random_polylines(bbox, 600, 12, 1)
        .into_iter()
        .enumerate()
        .map(|(i, l)| ExtentRecord::new(i as u64, Shape::Polyline(l)))
        .collect();
    let parks: Vec<ExtentRecord> = random_boxes(bbox, 900, 2.5, 2)
        .into_iter()
        .enumerate()
        .map(|(i, g)| ExtentRecord::new(i as u64, Shape::Polygon(g)))
        .collect();
    println!(
        "{} rivers (polylines) x {} parks (polygons)",
        rivers.len(),
        parks.len()
    );

    let cluster = Cluster::new(ClusterConfig::new(8));
    let eps = 0.8;
    let spec = JoinSpec::new(bbox, eps).with_partitions(32);
    let out = extent_join(&cluster, &spec, rivers.clone(), parks.clone());

    println!(
        "\nparks within {eps} of a river: {} pairs",
        out.result_count
    );
    println!(
        "replicated copies: {} river, {} park",
        out.replicated[0], out.replicated[1]
    );
    println!(
        "shuffle: {} KiB total ({} KiB remote), peak partition {} KiB",
        out.metrics.shuffle.total_bytes() / 1024,
        out.metrics.shuffle.remote_bytes / 1024,
        out.metrics.shuffle.peak_partition_bytes() / 1024,
    );
    println!(
        "simulated time: {:.3} s",
        out.metrics.simulated_time().as_secs_f64()
    );

    // Cross-check against the brute-force oracle (small enough here).
    let expected = brute_force_extent_pairs(&rivers, &parks, eps);
    assert_eq!(out.result_count as usize, expected.len());
    println!("verified against the brute-force oracle: OK");
    for (river, park) in out.pairs.iter().take(5) {
        println!("  river #{river} flows within eps of park #{park}");
    }
}
